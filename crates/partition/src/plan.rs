//! Compile-once G-set schedules.
//!
//! Building an engine's schedule — task programs for every cell, the host
//! demand order, the stream wiring — depends only on the problem *shape*
//! `(n, batch_len)` plus the engine's own geometry, never on the matrix
//! entries. [`CompiledPlan`] captures that shape-dependent work once:
//! engines memoize plans per shape (see `PlanCache`), instantiate a
//! simulator from a plan, and on later calls [`ArraySim::reset`] the cached
//! simulator (see `SimSlot`) and merely re-[`load`](CompiledPlan::load)
//! the new matrices, entering the hot loop with zero schedule rebuilding.
//!
//! At plan-build time every logical `stream_key(inst, k, h)` is **interned**
//! into a dense slot index, so the simulator's banks and host R-blocks are
//! Vec-backed slot tables and the per-cycle `can_read`/`read`/`write` path
//! never hashes. Interned bank slots carry their original `u64` key as a
//! sort key, preserving `corrupt_resident`'s deterministic sorted-key visit
//! order for fault injection.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use systolic_arraysim::{ArraySim, StreamDst, StreamSrc, Task};
use systolic_semiring::{DenseMatrix, Semiring};

/// One input-stream binding: which column of which batch instance enters
/// the array where. Feeds replay in recorded order, which for host feeds
/// *is* the demand order of the schedule.
#[derive(Clone, Copy, Debug)]
enum Feed {
    /// Host-injected stream: `mats[inst].col(col)` queued for `cell`.
    Host {
        cell: usize,
        slot: usize,
        inst: u32,
        col: u32,
    },
    /// Boundary-port preload: `mats[inst].col(col)` preloaded into `bank`.
    Preload {
        bank: usize,
        slot: usize,
        inst: u32,
        col: u32,
    },
}

/// A fully compiled schedule for one `(n, batch_len)` shape: array
/// geometry, per-cell task programs (shared, never copied per run), input
/// feed order and the cycle budget. Independent of the semiring — one plan
/// serves runs over any element type.
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    n: usize,
    batch_len: usize,
    cells: usize,
    link_delays: Vec<u64>,
    /// Per bank: the original stream keys, indexed by interned slot.
    bank_slots: Vec<Vec<u64>>,
    outputs: usize,
    memory_connections: usize,
    max_cycles: u64,
    feeds: Vec<Feed>,
    programs: Vec<Arc<[Task]>>,
}

impl CompiledPlan {
    /// Problem size this plan was compiled for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Batch length this plan was compiled for.
    pub fn batch_len(&self) -> usize {
        self.batch_len
    }

    /// Number of cells in the planned array.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Total interned stream slots across all banks.
    pub fn bank_stream_slots(&self) -> usize {
        self.bank_slots.iter().map(Vec::len).sum()
    }

    /// Builds a fresh simulator with this plan's structure and programs
    /// installed (no input data yet — see [`CompiledPlan::load`]).
    pub fn instantiate<S: Semiring>(&self, trace: bool) -> ArraySim<S> {
        let mut sim = ArraySim::<S>::new(self.cells);
        for &d in &self.link_delays {
            sim.add_link_with_delay(d);
        }
        for keys in &self.bank_slots {
            sim.add_bank_with_slots(keys.clone());
        }
        sim.add_outputs(self.outputs);
        sim.set_memory_connections(self.memory_connections);
        sim.set_max_cycles(self.max_cycles);
        for (cell, prog) in self.programs.iter().enumerate() {
            sim.set_cell_program(cell, Arc::clone(prog));
        }
        if trace {
            sim.enable_trace();
        }
        sim
    }

    /// Returns a copy of this plan whose task durations are overridden per
    /// G-graph row: the task labelled `k` gets duration `durs[k]` — the
    /// §4.3 varying-computation-time knob, applicable to any mapping's
    /// plan. With all durations `1` the copy is identical to the original
    /// (the classical single-cycle G-node).
    ///
    /// # Panics
    /// When a task's row label is not covered by `durs` or a duration is 0.
    #[must_use]
    pub fn with_row_durations(&self, durs: &[u32]) -> CompiledPlan {
        assert!(durs.iter().all(|&d| d >= 1), "durations must be ≥ 1");
        let mut plan = self.clone();
        plan.programs = self
            .programs
            .iter()
            .map(|prog| {
                prog.iter()
                    .map(|t| {
                        let mut t = t.clone();
                        t.duration = durs[t.label.k as usize];
                        t
                    })
                    .collect::<Vec<_>>()
                    .into()
            })
            .collect();
        plan
    }

    /// Feeds a batch's matrices into a (fresh or reset) simulator, in the
    /// order the plan recorded — for host streams that is the schedule's
    /// demand order.
    pub fn load<S: Semiring>(&self, sim: &mut ArraySim<S>, batch: &[DenseMatrix<S>]) {
        debug_assert_eq!(batch.len(), self.batch_len);
        for feed in &self.feeds {
            match *feed {
                Feed::Host {
                    cell,
                    slot,
                    inst,
                    col,
                } => {
                    sim.host_mut().enqueue_stream(
                        cell,
                        slot,
                        batch[inst as usize].col(col as usize),
                    );
                }
                Feed::Preload {
                    bank,
                    slot,
                    inst,
                    col,
                } => {
                    let b = sim.bank_mut(bank);
                    for v in batch[inst as usize].col(col as usize) {
                        b.preload(slot, v);
                    }
                }
            }
        }
    }
}

/// Per-bank key interner: first use of a key allocates the next slot.
#[derive(Default)]
struct KeyIntern {
    map: HashMap<u64, usize>,
    keys: Vec<u64>,
}

impl KeyIntern {
    fn slot(&mut self, key: u64) -> usize {
        *self.map.entry(key).or_insert_with(|| {
            self.keys.push(key);
            self.keys.len() - 1
        })
    }
}

/// Builds a [`CompiledPlan`] with the same call sequence an engine would
/// use to build an [`ArraySim`] directly, interning `u64` stream keys into
/// dense slots as they first appear. Hashing happens here, once per shape —
/// never in the simulator hot loop.
pub(crate) struct PlanBuilder {
    n: usize,
    batch_len: usize,
    cells: usize,
    link_delays: Vec<u64>,
    banks: Vec<KeyIntern>,
    /// Per-cell host stream interner (R-block slots are per cell).
    host: Vec<KeyIntern>,
    outputs: usize,
    memory_connections: usize,
    max_cycles: u64,
    feeds: Vec<Feed>,
    programs: Vec<Vec<Task>>,
}

impl PlanBuilder {
    pub(crate) fn new(n: usize, batch_len: usize, cells: usize) -> Self {
        Self {
            n,
            batch_len,
            cells,
            link_delays: Vec::new(),
            banks: Vec::new(),
            host: (0..cells).map(|_| KeyIntern::default()).collect(),
            outputs: 0,
            memory_connections: 0,
            max_cycles: u64::MAX,
            feeds: Vec::new(),
            programs: (0..cells).map(|_| Vec::new()).collect(),
        }
    }

    pub(crate) fn add_link(&mut self) -> usize {
        self.add_link_with_delay(1)
    }

    pub(crate) fn add_link_with_delay(&mut self, delay: u64) -> usize {
        self.link_delays.push(delay);
        self.link_delays.len() - 1
    }

    pub(crate) fn add_bank(&mut self) -> usize {
        self.banks.push(KeyIntern::default());
        self.banks.len() - 1
    }

    pub(crate) fn add_outputs(&mut self, count: usize) -> usize {
        let first = self.outputs;
        self.outputs += count;
        first
    }

    pub(crate) fn set_memory_connections(&mut self, c: usize) {
        self.memory_connections = c;
    }

    pub(crate) fn set_max_cycles(&mut self, max: u64) {
        self.max_cycles = max;
    }

    /// Interned bank-stream source.
    pub(crate) fn bank_src(&mut self, bank: usize, key: u64) -> StreamSrc {
        StreamSrc::Bank {
            bank,
            slot: self.banks[bank].slot(key),
        }
    }

    /// Interned bank-stream destination.
    pub(crate) fn bank_dst(&mut self, bank: usize, key: u64) -> StreamDst {
        StreamDst::Bank {
            bank,
            slot: self.banks[bank].slot(key),
        }
    }

    /// Interned host-stream source for a task running on `cell`.
    pub(crate) fn host_src(&mut self, cell: usize, key: u64) -> StreamSrc {
        StreamSrc::Host {
            slot: self.host[cell].slot(key),
        }
    }

    /// Records a host feed of `mats[inst].col(col)` for `cell`.
    pub(crate) fn feed_host(&mut self, cell: usize, key: u64, inst: usize, col: usize) {
        let slot = self.host[cell].slot(key);
        self.feeds.push(Feed::Host {
            cell,
            slot,
            inst: inst as u32,
            col: col as u32,
        });
    }

    /// Records a boundary-port preload of `mats[inst].col(col)` into `bank`.
    pub(crate) fn feed_preload(&mut self, bank: usize, key: u64, inst: usize, col: usize) {
        let slot = self.banks[bank].slot(key);
        self.feeds.push(Feed::Preload {
            bank,
            slot,
            inst: inst as u32,
            col: col as u32,
        });
    }

    pub(crate) fn push_task(&mut self, cell: usize, task: Task) {
        self.programs[cell].push(task);
    }

    pub(crate) fn finish(self) -> CompiledPlan {
        CompiledPlan {
            n: self.n,
            batch_len: self.batch_len,
            cells: self.cells,
            link_delays: self.link_delays,
            bank_slots: self.banks.into_iter().map(|b| b.keys).collect(),
            outputs: self.outputs,
            memory_connections: self.memory_connections,
            max_cycles: self.max_cycles,
            feeds: self.feeds,
            programs: self
                .programs
                .into_iter()
                .map(std::convert::Into::into)
                .collect(),
        }
    }
}

/// Plans memoized by `(n, batch_len)` shape.
type PlanMap = HashMap<(usize, usize), Arc<CompiledPlan>>;

/// Shape-keyed plan memo, shared (via `Arc`) across engine clones — every
/// `ParallelEngine` shard reuses the one compiled plan per shape.
#[derive(Clone, Default)]
pub(crate) struct PlanCache {
    plans: Arc<Mutex<PlanMap>>,
}

impl PlanCache {
    /// Returns the memoized plan for `(n, batch_len)`, building it under
    /// the lock on first use (concurrent shards wait and then share it).
    pub(crate) fn get_or_build(
        &self,
        n: usize,
        batch_len: usize,
        build: impl FnOnce() -> CompiledPlan,
    ) -> Arc<CompiledPlan> {
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        Arc::clone(
            plans
                .entry((n, batch_len))
                .or_insert_with(|| Arc::new(build())),
        )
    }

    pub(crate) fn clear(&self) {
        self.plans.lock().expect("plan cache poisoned").clear();
    }

    /// True when a plan for `(n, batch_len)` is already memoized.
    pub(crate) fn contains(&self, n: usize, batch_len: usize) -> bool {
        self.plans
            .lock()
            .expect("plan cache poisoned")
            .contains_key(&(n, batch_len))
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.plans.lock().map(|p| p.len()).unwrap_or(0);
        write!(f, "PlanCache({n} plans)")
    }
}

/// A cached, reusable simulator paired with the plan that built it.
struct CachedSim<S: Semiring> {
    plan: Arc<CompiledPlan>,
    sim: ArraySim<S>,
}

/// Per-engine-value simulator cache (NOT shared across clones — a simulator
/// is single-threaded state). Type-erased so non-generic engines can cache
/// a simulator for whichever semiring they last ran.
#[derive(Default)]
pub(crate) struct SimSlot {
    slot: Mutex<Option<Box<dyn Any + Send>>>,
}

impl SimSlot {
    /// Takes the cached simulator if it was built from exactly `plan` (by
    /// `Arc` identity) over the same semiring, reset and ready to reload.
    pub(crate) fn take<S: Semiring>(&self, plan: &Arc<CompiledPlan>) -> Option<ArraySim<S>> {
        let boxed = self.slot.lock().expect("sim cache poisoned").take()?;
        let cached = boxed.downcast::<CachedSim<S>>().ok()?;
        if Arc::ptr_eq(&cached.plan, plan) {
            let mut sim = cached.sim;
            sim.reset();
            Some(sim)
        } else {
            None
        }
    }

    /// Stores a simulator for reuse by the next same-shape call.
    pub(crate) fn store<S: Semiring>(&self, plan: Arc<CompiledPlan>, sim: ArraySim<S>) {
        *self.slot.lock().expect("sim cache poisoned") = Some(Box::new(CachedSim { plan, sim }));
    }

    pub(crate) fn clear(&self) {
        *self.slot.lock().expect("sim cache poisoned") = None;
    }
}

/// Clones start with an empty cache: simulators are per-value state.
impl Clone for SimSlot {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl fmt::Debug for SimSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let occupied = self.slot.lock().map(|s| s.is_some()).unwrap_or(false);
        write!(f, "SimSlot(occupied: {occupied})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_arraysim::{TaskKind, TaskLabel};
    use systolic_semiring::MinPlus;

    fn trivial_plan() -> CompiledPlan {
        let mut b = PlanBuilder::new(2, 1, 1);
        let bank = b.add_bank();
        let out = b.add_outputs(1);
        let src = b.bank_src(bank, 0xdead_beef);
        b.feed_preload(bank, 0xdead_beef, 0, 0);
        b.push_task(
            0,
            Task {
                kind: TaskKind::Pass,
                len: 2,
                col_in: Some(src),
                pivot_in: None,
                col_out: Some(StreamDst::Output { stream: out }),
                pivot_out: None,
                head_out: None,
                duration: 1,
                useful_ops: 0,
                label: TaskLabel::default(),
            },
        );
        b.finish()
    }

    #[test]
    fn interning_is_first_use_order_and_stable() {
        let mut b = PlanBuilder::new(2, 1, 1);
        let bank = b.add_bank();
        let s9 = b.bank_src(bank, 9);
        let s2 = b.bank_src(bank, 2);
        let s9again = b.bank_src(bank, 9);
        assert_eq!(s9, StreamSrc::Bank { bank, slot: 0 });
        assert_eq!(s2, StreamSrc::Bank { bank, slot: 1 });
        assert_eq!(s9, s9again);
        let plan = b.finish();
        assert_eq!(plan.bank_slots[0], vec![9, 2], "slots keep their keys");
    }

    #[test]
    fn instantiate_load_run_round_trips() {
        let plan = trivial_plan();
        let mut a = DenseMatrix::<MinPlus>::zeros(2, 2);
        a.set(0, 0, 7);
        a.set(1, 0, 8);
        let mut sim = plan.instantiate::<MinPlus>(false);
        plan.load(&mut sim, std::slice::from_ref(&a));
        sim.run().unwrap();
        assert_eq!(sim.outputs()[0], vec![7, 8]);
        // Reset + reload reruns identically on the same simulator.
        sim.reset();
        plan.load(&mut sim, std::slice::from_ref(&a));
        sim.run().unwrap();
        assert_eq!(sim.outputs()[0], vec![7, 8]);
    }

    #[test]
    fn sim_slot_matches_on_plan_identity_and_semiring() {
        let plan = Arc::new(trivial_plan());
        let other = Arc::new(trivial_plan());
        let slot = SimSlot::default();
        slot.store::<MinPlus>(Arc::clone(&plan), plan.instantiate(false));
        // Identical shape but different Arc: no match.
        assert!(slot.take::<MinPlus>(&other).is_none());
        slot.store::<MinPlus>(Arc::clone(&plan), plan.instantiate(false));
        // Different semiring: no match.
        assert!(slot.take::<systolic_semiring::Bool>(&plan).is_none());
        slot.store::<MinPlus>(Arc::clone(&plan), plan.instantiate(false));
        assert!(slot.take::<MinPlus>(&plan).is_some());
        // Take empties the slot.
        assert!(slot.take::<MinPlus>(&plan).is_none());
    }

    #[test]
    fn plan_cache_memoizes_per_shape() {
        let cache = PlanCache::default();
        let p1 = cache.get_or_build(2, 1, trivial_plan);
        let p2 = cache.get_or_build(2, 1, || panic!("must be memoized"));
        assert!(Arc::ptr_eq(&p1, &p2));
        let p3 = cache.get_or_build(2, 2, trivial_plan);
        assert!(!Arc::ptr_eq(&p1, &p3));
        cache.clear();
        let p4 = cache.get_or_build(2, 1, trivial_plan);
        assert!(!Arc::ptr_eq(&p1, &p4));
    }
}
