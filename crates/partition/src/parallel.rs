//! Host-side batch parallelism over any closure engine.
//!
//! The paper's arrays process a *batch* of problem instances by chaining
//! them through one simulated array. [`ParallelEngine`] instead shards the
//! batch across replicas of the wrapped engine, one replica per worker of a
//! persistent thread pool, with workers stealing slices of
//! [`ClosureEngine::preferred_chunk`] instances from a shared index (one
//! instance at a time for scalar engines; whole lane groups for
//! [`crate::PackedEngine`], which would waste 63 of its 64 lanes on
//! single-instance steals). Each chunk still runs exactly as the wrapped
//! engine would run it, so results are bit-identical to the serial engine
//! for any thread count; only host wall-clock time changes.
//!
//! Merged [`RunStats`] are folded in chunk order (not completion order) —
//! instance order when the chunk is 1 — so every measured counter is
//! deterministic and independent of the worker count. `wall_nanos` is the
//! end-to-end batch wall time.
//!
//! Engine replicas are created by `Clone`, which shares the wrapped
//! engine's compiled-plan cache (see [`crate::plan::CompiledPlan`]): the
//! single-instance schedule is compiled once and every shard replays it.
//! Each replica still owns its private simulator (cloning never shares
//! one), so workers run without synchronizing on anything but the cache's
//! one-time fill.

use crate::engine::{validate_batch, ClosureEngine, EngineError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use systolic_arraysim::RunStats;
use systolic_semiring::{DenseMatrix, PathSemiring};
use systolic_util::WorkerPool;

/// Runs a wrapped [`ClosureEngine`] on batch instances in parallel.
///
/// The pool is created once in [`ParallelEngine::new`] and reused across
/// every [`ClosureEngine::closure_many`] call; workers are joined when the
/// engine is dropped.
///
/// ```
/// use systolic_partition::{ClosureEngine, LinearEngine, ParallelEngine};
/// use systolic_semiring::{warshall, Bool, DenseMatrix};
///
/// let mut a = DenseMatrix::<Bool>::zeros(5, 5);
/// a.set(0, 3, true);
/// a.set(3, 1, true);
/// let batch = vec![a.clone(), a.clone(), a.clone()];
/// let par = ParallelEngine::new(LinearEngine::new(2), 2);
/// let (closed, _stats) = par.closure_many(&batch).unwrap();
/// assert_eq!(closed[2], warshall(&a));
/// ```
pub struct ParallelEngine<E> {
    inner: E,
    pool: WorkerPool,
}

impl<E> ParallelEngine<E> {
    /// Wraps `inner`, spawning a persistent pool of `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(inner: E, threads: usize) -> Self {
        Self {
            inner,
            pool: WorkerPool::new(threads),
        }
    }

    /// Number of pool workers.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The wrapped serial engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

type ChunkResult<S> = Result<(Vec<DenseMatrix<S>>, RunStats), EngineError>;

/// Rebases a chunk-relative [`EngineError::Corrupt`] instance index onto
/// the full batch, so callers see the same coordinates the serial engine
/// would report.
fn offset_instance(e: EngineError, base: usize) -> EngineError {
    match e {
        EngineError::Corrupt { instance, detail } => EngineError::Corrupt {
            instance: base + instance,
            detail,
        },
        other => other,
    }
}

impl<S, E> ClosureEngine<S> for ParallelEngine<E>
where
    S: PathSemiring,
    E: ClosureEngine<S> + Clone + Send + 'static,
{
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn cells(&self) -> usize {
        // One engine replica per worker.
        self.inner.cells() * self.pool.threads()
    }

    fn closure_many(
        &self,
        mats: &[DenseMatrix<S>],
    ) -> Result<(Vec<DenseMatrix<S>>, RunStats), EngineError> {
        validate_batch(mats)?;
        let started = std::time::Instant::now();
        let chunk = self.inner.preferred_chunk().max(1);
        let batch: Arc<Vec<DenseMatrix<S>>> = Arc::new(mats.to_vec());
        let chunks = batch.len().div_ceil(chunk);
        let slots: Arc<Mutex<Vec<Option<ChunkResult<S>>>>> =
            Arc::new(Mutex::new(vec![None; chunks]));
        let next = Arc::new(AtomicUsize::new(0));

        let workers = self.pool.threads().min(chunks);
        let run = self.pool.scoped_run(workers, |_| {
            let engine = self.inner.clone();
            let batch = Arc::clone(&batch);
            let slots = Arc::clone(&slots);
            let next = Arc::clone(&next);
            Box::new(move || loop {
                let ci = next.fetch_add(1, Ordering::Relaxed);
                if ci >= chunks {
                    break;
                }
                let lo = ci * chunk;
                let hi = (lo + chunk).min(batch.len());
                let r = engine.closure_many(&batch[lo..hi]);
                slots.lock().expect("result store poisoned")[ci] = Some(r);
            })
        });
        // Engine panics are bugs, not recoverable failures: re-raise with
        // the worker's payload now that every sibling has finished.
        if let Err(p) = run {
            panic!("{p}");
        }

        let slots = Arc::into_inner(slots)
            .expect("all workers joined")
            .into_inner()
            .expect("result store poisoned");
        let mut results = Vec::with_capacity(batch.len());
        let mut merged: Option<RunStats> = None;
        for (ci, slot) in slots.into_iter().enumerate() {
            // Propagate the lowest-chunk failure, matching the serial
            // engine, which would have failed on that slice first.
            let r = slot.unwrap_or_else(|| panic!("chunk {ci} never ran"));
            let (ms, stats) = match r {
                Ok(ok) => ok,
                Err(e) => return Err(offset_instance(e, ci * chunk)),
            };
            match &mut merged {
                None => merged = Some(stats),
                Some(acc) => acc.merge(&stats),
            }
            results.extend(ms);
        }
        let mut merged = merged.expect("validated batch is non-empty");
        merged.wall_nanos = started.elapsed().as_nanos() as u64;
        Ok((results, merged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedLinearEngine;
    use crate::linear::LinearEngine;
    use systolic_semiring::{warshall, Bool};
    use systolic_util::Rng;

    fn random_bool(n: usize, rng: &mut Rng) -> DenseMatrix<Bool> {
        DenseMatrix::from_fn(n, n, |i, j| i != j && rng.gen_bool(0.2))
    }

    #[test]
    fn matches_serial_engine_bit_for_bit() {
        let mut rng = Rng::seed_from_u64(17);
        let batch: Vec<_> = (0..6).map(|_| random_bool(7, &mut rng)).collect();
        let serial = LinearEngine::new(3);
        let expected: Vec<_> = batch.iter().map(|a| serial.closure(a).unwrap().0).collect();
        for threads in [1, 2, 4] {
            let par = ParallelEngine::new(LinearEngine::new(3), threads);
            let (got, _) = par.closure_many(&batch).unwrap();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn merged_stats_are_thread_count_invariant() {
        let mut rng = Rng::seed_from_u64(23);
        let batch: Vec<_> = (0..5).map(|_| random_bool(6, &mut rng)).collect();
        let one = ParallelEngine::new(FixedLinearEngine::new(), 1);
        let (_, s1) = one.closure_many(&batch).unwrap();
        for threads in [2, 3, 4] {
            let par = ParallelEngine::new(FixedLinearEngine::new(), threads);
            let (_, s) = par.closure_many(&batch).unwrap();
            // PartialEq on RunStats ignores wall_nanos by design.
            assert_eq!(s, s1, "threads={threads}");
        }
    }

    #[test]
    fn merged_stats_aggregate_per_instance_runs() {
        let mut rng = Rng::seed_from_u64(31);
        let batch: Vec<_> = (0..4).map(|_| random_bool(5, &mut rng)).collect();
        let serial = LinearEngine::new(2);
        let mut expect_ops = 0;
        for a in &batch {
            expect_ops += serial.closure(a).unwrap().1.useful_ops;
        }
        let par = ParallelEngine::new(LinearEngine::new(2), 2);
        let (_, s) = par.closure_many(&batch).unwrap();
        assert_eq!(s.useful_ops, expect_ops);
        assert_eq!(s.phases.total(), s.cycles);
    }

    #[test]
    fn result_is_the_transitive_closure() {
        let mut rng = Rng::seed_from_u64(41);
        let batch: Vec<_> = (0..3).map(|_| random_bool(8, &mut rng)).collect();
        let par = ParallelEngine::new(LinearEngine::new(4), 3);
        let (got, _) = par.closure_many(&batch).unwrap();
        for (a, c) in batch.iter().zip(&got) {
            assert_eq!(*c, warshall(a));
        }
    }

    #[test]
    fn bad_batches_are_rejected() {
        let par = ParallelEngine::new(LinearEngine::new(2), 2);
        let empty: Vec<DenseMatrix<Bool>> = vec![];
        assert!(matches!(
            par.closure_many(&empty),
            Err(EngineError::BadInput(_))
        ));
        let mixed = vec![
            DenseMatrix::<Bool>::zeros(3, 3),
            DenseMatrix::<Bool>::zeros(4, 4),
        ];
        assert!(matches!(
            par.closure_many(&mixed),
            Err(EngineError::BadInput(_))
        ));
    }

    #[test]
    fn pool_survives_repeated_batches() {
        let par = ParallelEngine::new(LinearEngine::new(2), 4);
        let mut rng = Rng::seed_from_u64(53);
        for _ in 0..5 {
            let batch: Vec<_> = (0..8).map(|_| random_bool(5, &mut rng)).collect();
            let (got, _) = par.closure_many(&batch).unwrap();
            for (a, c) in batch.iter().zip(&got) {
                assert_eq!(*c, warshall(a));
            }
        }
        assert_eq!(par.threads(), 4);
    }
}
