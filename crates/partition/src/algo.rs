//! Elimination-algorithm pipelines (§4.3): LU decomposition and the
//! Faddeev algorithm executed by the *same* partitioned-array machinery
//! that runs transitive closure.
//!
//! The closure engines map the uniform Fig. 17 parallelogram; here the
//! G-graph is a [`GenericGGraph`] elimination trapezoid whose rows shrink
//! (`len = msize - k`), so G-node computation times *vary* across rows
//! while staying uniform within a row — exactly the §4.3 situation. The
//! two mappings mirror their closure counterparts:
//!
//! * [`EliminationMapping::Linear`] — LPGS onto `m` chained cells: cell
//!   `c` owns skewed positions `h ≡ c (mod m)`; every G-set is a slice of
//!   *one* row, so members share a computation time and no cell idles
//!   inside a set (Fig. 22b's equal-time paths).
//! * [`EliminationMapping::Grid`] — cut-and-pile onto `√m × √m` cells:
//!   a G-set is an `s × s` block of `(k, h)` space mixing `s` different
//!   row times, so fast members idle until the slowest finishes — the
//!   *time mixing* that §4.3 charges against two-dimensional G-sets.
//!
//! Cells run [`TaskKind::DivHead`] / [`TaskKind::ElimFuse`] programs over
//! the [`Real`] semiring; each fuse's finished
//! pivot-row element leaves through the task's dedicated `head_out`
//! stream, each level's pivot stream (the `L` column) drains at the row's
//! right edge, and the last level's fused sub-columns are the remaining
//! trailing block. [`run_elimination`] reassembles those streams into the
//! full in-place elimination state — for LU the compact `L\U` factors,
//! bit-identical to the straight-line reference (identical expression
//! trees, same f64 operations in the same order).

use crate::engine::{stream_key, EngineError};
use crate::plan::{CompiledPlan, PlanBuilder};
use systolic_arraysim::{RunStats, StreamDst, StreamSrc, Task, TaskKind, TaskLabel};
use systolic_semiring::{DenseMatrix, Real};
use systolic_transform::{GenRole, GenericGGraph};

/// Which elimination algorithm to pipeline.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Algo {
    /// LU decomposition without pivoting of an `n × n` matrix
    /// (`n - 1` elimination levels).
    Lu,
    /// The Faddeev algorithm: eliminate the first `n` columns of the
    /// `2n × 2n` compound matrix `[[A, B], [-C, D]]`, leaving the Schur
    /// complement `D + C·A⁻¹·B` in the lower-right block.
    Faddeev,
}

impl Algo {
    /// Algorithm name for reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Lu => "lu",
            Algo::Faddeev => "faddeev",
        }
    }

    /// Side length of the matrix the pipeline consumes for problem size
    /// `n` (`n` for LU, `2n` for Faddeev's compound matrix).
    pub fn msize(self, n: usize) -> usize {
        match self {
            Algo::Lu => n,
            Algo::Faddeev => 2 * n,
        }
    }

    /// Number of elimination levels for problem size `n`.
    pub fn levels(self, n: usize) -> usize {
        match self {
            Algo::Lu => n - 1,
            Algo::Faddeev => n,
        }
    }

    /// The algorithm's generic G-graph for problem size `n`.
    pub fn graph(self, n: usize) -> GenericGGraph {
        match self {
            Algo::Lu => GenericGGraph::lu(n),
            Algo::Faddeev => GenericGGraph::faddeev(n),
        }
    }
}

/// Array geometry for an elimination run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EliminationMapping {
    /// LPGS chain of `m` cells (`m + 1` memory connections).
    Linear {
        /// Number of cells.
        m: usize,
    },
    /// `s × s` grid (`2s` memory connections).
    Grid {
        /// Grid side length.
        s: usize,
    },
}

impl EliminationMapping {
    /// Mapping name for reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            EliminationMapping::Linear { .. } => "lpgs-linear",
            EliminationMapping::Grid { .. } => "grid-partitioned",
        }
    }

    /// Total number of cells.
    pub fn cells(self) -> usize {
        match self {
            EliminationMapping::Linear { m } => m,
            EliminationMapping::Grid { s } => s * s,
        }
    }

    fn validate(self) -> Result<(), EngineError> {
        let ok = match self {
            EliminationMapping::Linear { m } => m >= 1,
            EliminationMapping::Grid { s } => s >= 1,
        };
        if ok {
            Ok(())
        } else {
            Err(EngineError::BadInput(
                "elimination mapping needs at least one cell".into(),
            ))
        }
    }
}

/// Where the elimination pipeline's result elements land in the output
/// streams, shared by the plan builders (writing) and the assembler
/// (reading). Per instance, the streams are laid out as:
///
/// 1. one single-word *head* stream per fuse `(k, h)` — the finished
///    pivot-row element `u_kh`;
/// 2. one *L-column* stream per level `k` — the pivot stream
///    `[u_kk, l_{k+1,k}, …]` draining at the row's right edge;
/// 3. one *tail* stream per trailing column `h ≥ levels` — the last
///    level's fused sub-column (rows `levels..msize`).
#[derive(Copy, Clone, Debug)]
struct OutputLayout {
    msize: usize,
    levels: usize,
    out0: usize,
}

impl OutputLayout {
    fn new(msize: usize, levels: usize, out0: usize) -> Self {
        Self {
            msize,
            levels,
            out0,
        }
    }

    /// Streams per instance.
    fn per_instance(&self) -> usize {
        self.heads_total() + self.levels + (self.msize - self.levels)
    }

    fn heads_total(&self) -> usize {
        // Row k has msize - k - 1 fuses.
        (0..self.levels).map(|k| self.msize - k - 1).sum()
    }

    /// Head stream of fuse `(k, h)` (`h > k`).
    fn head(&self, inst: usize, k: usize, h: usize) -> usize {
        debug_assert!(k < self.levels && h > k && h < self.msize);
        let before: usize = (0..k).map(|kk| self.msize - kk - 1).sum();
        self.out0 + inst * self.per_instance() + before + (h - k - 1)
    }

    /// L-column stream of level `k` (`msize - k` words).
    fn lcol(&self, inst: usize, k: usize) -> usize {
        debug_assert!(k < self.levels);
        self.out0 + inst * self.per_instance() + self.heads_total() + k
    }

    /// Trailing-column stream of column `h ≥ levels`
    /// (`msize - levels` words).
    fn tail(&self, inst: usize, h: usize) -> usize {
        debug_assert!(h >= self.levels && h < self.msize);
        self.out0
            + inst * self.per_instance()
            + self.heads_total()
            + self.levels
            + (h - self.levels)
    }
}

/// Deterministic diagonally-dominant `msize × msize` input matrix —
/// numerically stable under elimination without pivoting, shared by the
/// CLI, the benchmarks and the tests so runs are reproducible.
pub fn elimination_input(msize: usize, seed: u64) -> DenseMatrix<Real> {
    DenseMatrix::<Real>::from_fn(msize, msize, |i, j| {
        let h = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((i * 131 + j * 17) as u64);
        let frac = (h % 1000) as f64 / 1000.0;
        if i == j {
            (msize as f64) + 1.0 + frac
        } else {
            frac - 0.5
        }
    })
}

/// The §4.3 per-level durations: level `k` still works on an
/// `(msize-k) × (msize-k)` trailing submatrix, so its per-word duration is
/// `msize - k` — monotone decreasing, uniform within a row.
pub fn level_durations(algo: Algo, n: usize) -> Vec<u32> {
    let msize = algo.msize(n);
    (0..algo.levels(n)).map(|k| (msize - k) as u32).collect()
}

/// Compiles the plan for one elimination pipeline: `batch_len` instances
/// of `algo` at problem size `n` on `mapping`, with every G-node at the
/// default per-word duration of 1.
pub fn elimination_plan(
    algo: Algo,
    n: usize,
    mapping: EliminationMapping,
    batch_len: usize,
) -> CompiledPlan {
    plan_for(&algo.graph(n), algo, n, mapping, batch_len)
}

/// [`elimination_plan`] with **varying per-row G-node durations** (§4.3):
/// every word of a row-`k` G-node occupies its cell for `durs[k]` cycles.
/// Durations change utilization, never results — outputs stay bit-identical
/// to the uniform plan.
pub fn elimination_plan_timed(
    algo: Algo,
    n: usize,
    mapping: EliminationMapping,
    batch_len: usize,
    durs: &[u32],
) -> CompiledPlan {
    plan_for(
        &algo.graph(n).with_row_durations(durs),
        algo,
        n,
        mapping,
        batch_len,
    )
}

fn plan_for(
    gg: &GenericGGraph,
    algo: Algo,
    n: usize,
    mapping: EliminationMapping,
    batch_len: usize,
) -> CompiledPlan {
    match mapping {
        EliminationMapping::Linear { m } => linear_plan(gg, algo, n, m, batch_len),
        EliminationMapping::Grid { s } => grid_plan(gg, algo, n, s, batch_len),
    }
}

fn cycle_budget(gg: &GenericGGraph, batch_len: usize) -> u64 {
    let total: u64 = (0..gg.rows())
        .map(|k| gg.row(k).width as u64 * gg.row(k).gnode_time())
        .sum();
    batch_len as u64 * (total * 40 + 1_000) + 200_000
}

/// LPGS chain: cell `c` owns `h ≡ c (mod m)`; blocks of `m` consecutive
/// `h` positions advance left to right, levels top to bottom inside a
/// block (the Fig. 20a vertical-path schedule on the trapezoid).
fn linear_plan(
    gg: &GenericGGraph,
    algo: Algo,
    n: usize,
    m: usize,
    batch_len: usize,
) -> CompiledPlan {
    let msize = algo.msize(n);
    let levels = algo.levels(n);
    let blocks = msize.div_ceil(m);
    let mut plan = PlanBuilder::new(msize, batch_len, m);

    // Neighbor links c → c+1 carry the intra-block pivot chain.
    let links: Vec<usize> = (0..m.saturating_sub(1)).map(|_| plan.add_link()).collect();
    // Private column bank per cell plus the shared pivot boundary bank.
    for _ in 0..=m {
        plan.add_bank();
    }
    let pivot_bank = m;
    plan.set_memory_connections(m + 1);
    let layout = OutputLayout::new(msize, levels, plan.add_outputs(0));
    plan.add_outputs(batch_len * layout.per_instance());

    // Host demands in schedule order: level 0 reads whole input columns.
    for inst in 0..batch_len {
        for b in 0..blocks {
            for c in 0..m {
                let h = b * m + c;
                if h < msize {
                    plan.feed_host(c, stream_key(inst, 0, h), inst, h);
                }
            }
        }
    }

    for inst in 0..batch_len {
        for b in 0..blocks {
            for k in 0..levels {
                for c in 0..m {
                    let h = b * m + c;
                    let Some(role) = gg.at_h(k, h) else { continue };
                    let row = gg.row(k);
                    let kind = match role {
                        GenRole::Head => TaskKind::DivHead,
                        GenRole::Fuse => TaskKind::ElimFuse,
                        GenRole::Tail => unreachable!("elimination rows have no tail"),
                    };
                    let col_in = if k == 0 {
                        Some(plan.host_src(c, stream_key(inst, 0, h)))
                    } else {
                        Some(plan.bank_src(c, stream_key(inst, k - 1, h)))
                    };
                    let pivot_in = match role {
                        GenRole::Head => None,
                        _ if c > 0 => Some(StreamSrc::Link(links[c - 1])),
                        _ => Some(plan.bank_src(pivot_bank, stream_key(inst, k, h - 1))),
                    };
                    // The fused sub-column: down to the next level, or out
                    // as a trailing column after the last level.
                    let col_out = match role {
                        GenRole::Head => None,
                        _ if k == levels - 1 => Some(StreamDst::Output {
                            stream: layout.tail(inst, h),
                        }),
                        _ => Some(plan.bank_dst(c, stream_key(inst, k, h))),
                    };
                    // The pivot stream: right along the row, draining as
                    // the finished L column at the row's last position.
                    let pivot_out = if h == msize - 1 {
                        Some(StreamDst::Output {
                            stream: layout.lcol(inst, k),
                        })
                    } else if c < m - 1 {
                        Some(StreamDst::Link(links[c]))
                    } else {
                        Some(plan.bank_dst(pivot_bank, stream_key(inst, k, h)))
                    };
                    let head_out = match role {
                        GenRole::Fuse => Some(StreamDst::Output {
                            stream: layout.head(inst, k, h),
                        }),
                        _ => None,
                    };
                    plan.push_task(
                        c,
                        Task {
                            kind,
                            len: row.len,
                            col_in,
                            pivot_in,
                            col_out,
                            pivot_out,
                            head_out,
                            duration: row.duration,
                            useful_ops: gg.useful_ops(k, h),
                            label: TaskLabel {
                                k: k as u32,
                                h: h as u32,
                            },
                        },
                    );
                }
            }
        }
    }

    plan.set_max_cycles(cycle_budget(gg, batch_len));
    plan.finish()
}

/// Cut-and-pile grid: G-node `(k, h)` runs on cell `(k mod s, h mod s)`;
/// `h`-blocks advance left to right, `k`-blocks top to bottom inside.
fn grid_plan(gg: &GenericGGraph, algo: Algo, n: usize, s: usize, batch_len: usize) -> CompiledPlan {
    let msize = algo.msize(n);
    let levels = algo.levels(n);
    let bcols = msize.div_ceil(s);
    let brows = levels.div_ceil(s);
    let cell_id = |ri: usize, ci: usize| ri * s + ci;
    let mut plan = PlanBuilder::new(msize, batch_len, s * s);

    // Horizontal pivot links (ri,ci) → (ri,ci+1); vertical column links
    // (ri,ci) → (ri+1,ci).
    let mut hl = vec![usize::MAX; s * s];
    let mut vl = vec![usize::MAX; s * s];
    for ri in 0..s {
        for ci in 0..s {
            if ci + 1 < s {
                hl[cell_id(ri, ci)] = plan.add_link();
            }
            if ri + 1 < s {
                vl[cell_id(ri, ci)] = plan.add_link();
            }
        }
    }
    for _ in 0..2 * s {
        plan.add_bank();
    }
    let col_bank = |ci: usize| ci;
    let piv_bank = |ri: usize| s + ri;
    plan.set_memory_connections(2 * s);
    let layout = OutputLayout::new(msize, levels, plan.add_outputs(0));
    plan.add_outputs(batch_len * layout.per_instance());

    for inst in 0..batch_len {
        for bc in 0..bcols {
            for ci in 0..s {
                let h = bc * s + ci;
                if h < msize {
                    plan.feed_host(cell_id(0, ci), stream_key(inst, 0, h), inst, h);
                }
            }
        }
    }

    for inst in 0..batch_len {
        for bc in 0..bcols {
            for br in 0..brows {
                for ri in 0..s {
                    for ci in 0..s {
                        let k = br * s + ri;
                        let h = bc * s + ci;
                        if k >= levels {
                            continue;
                        }
                        let Some(role) = gg.at_h(k, h) else { continue };
                        let row = gg.row(k);
                        let kind = match role {
                            GenRole::Head => TaskKind::DivHead,
                            GenRole::Fuse => TaskKind::ElimFuse,
                            GenRole::Tail => unreachable!("elimination rows have no tail"),
                        };
                        let col_in = if k == 0 {
                            Some(plan.host_src(cell_id(ri, ci), stream_key(inst, 0, h)))
                        } else if ri > 0 {
                            Some(StreamSrc::Link(vl[cell_id(ri - 1, ci)]))
                        } else {
                            Some(plan.bank_src(col_bank(ci), stream_key(inst, k - 1, h)))
                        };
                        let pivot_in = match role {
                            GenRole::Head => None,
                            _ if ci > 0 => Some(StreamSrc::Link(hl[cell_id(ri, ci - 1)])),
                            _ => Some(plan.bank_src(piv_bank(ri), stream_key(inst, k, h - 1))),
                        };
                        let col_out = match role {
                            GenRole::Head => None,
                            _ if k == levels - 1 => Some(StreamDst::Output {
                                stream: layout.tail(inst, h),
                            }),
                            _ if ri + 1 < s => Some(StreamDst::Link(vl[cell_id(ri, ci)])),
                            _ => Some(plan.bank_dst(col_bank(ci), stream_key(inst, k, h))),
                        };
                        let pivot_out = if h == msize - 1 {
                            Some(StreamDst::Output {
                                stream: layout.lcol(inst, k),
                            })
                        } else if ci + 1 < s {
                            Some(StreamDst::Link(hl[cell_id(ri, ci)]))
                        } else {
                            Some(plan.bank_dst(piv_bank(ri), stream_key(inst, k, h)))
                        };
                        let head_out = match role {
                            GenRole::Fuse => Some(StreamDst::Output {
                                stream: layout.head(inst, k, h),
                            }),
                            _ => None,
                        };
                        plan.push_task(
                            cell_id(ri, ci),
                            Task {
                                kind,
                                len: row.len,
                                col_in,
                                pivot_in,
                                col_out,
                                pivot_out,
                                head_out,
                                duration: row.duration,
                                useful_ops: gg.useful_ops(k, h),
                                label: TaskLabel {
                                    k: k as u32,
                                    h: h as u32,
                                },
                            },
                        );
                    }
                }
            }
        }
    }

    plan.set_max_cycles(cycle_budget(gg, batch_len));
    plan.finish()
}

/// Runs one elimination instance through the simulated partitioned array
/// and reassembles the full in-place elimination state (`msize × msize`).
///
/// For [`Algo::Lu`] the result is the compact `L\U` factor matrix; for
/// [`Algo::Faddeev`] it is the compound matrix after `n` levels, whose
/// lower-right `n × n` block is the Schur complement. Both match the
/// straight-line `systolic_dgraph::eval_elimination_graph` reference
/// bit-for-bit.
///
/// # Errors
/// [`EngineError::BadInput`] for shape/geometry problems, simulator errors
/// (deadlock, runaway) forwarded, [`EngineError::Corrupt`] when an output
/// stream drained with the wrong word count.
pub fn run_elimination(
    algo: Algo,
    mapping: EliminationMapping,
    a: &DenseMatrix<Real>,
) -> Result<(DenseMatrix<Real>, RunStats), EngineError> {
    run_impl(algo, mapping, a, None)
}

/// [`run_elimination`] with varying per-row G-node durations (§4.3):
/// `durs[k]` cycles per word on row `k`. The result matrix is bit-identical
/// to the uniform-duration run; only [`RunStats`] (cycles, occupancy)
/// change — this is the measurement knob behind experiment E30.
///
/// # Errors
/// As [`run_elimination`], plus [`EngineError::BadInput`] when `durs` does
/// not provide exactly one duration ≥ 1 per elimination level.
pub fn run_elimination_timed(
    algo: Algo,
    mapping: EliminationMapping,
    a: &DenseMatrix<Real>,
    durs: &[u32],
) -> Result<(DenseMatrix<Real>, RunStats), EngineError> {
    run_impl(algo, mapping, a, Some(durs))
}

fn run_impl(
    algo: Algo,
    mapping: EliminationMapping,
    a: &DenseMatrix<Real>,
    durs: Option<&[u32]>,
) -> Result<(DenseMatrix<Real>, RunStats), EngineError> {
    mapping.validate()?;
    let msize = a.rows();
    if a.cols() != msize {
        return Err(EngineError::BadInput(format!(
            "elimination input must be square, got {}×{}",
            a.rows(),
            a.cols()
        )));
    }
    let n = match algo {
        Algo::Lu => msize,
        Algo::Faddeev => {
            if !msize.is_multiple_of(2) {
                return Err(EngineError::BadInput(format!(
                    "Faddeev consumes a 2n×2n compound matrix, got {msize}×{msize}"
                )));
            }
            msize / 2
        }
    };
    if algo.msize(n) < 2 || algo.levels(n) < 1 {
        return Err(EngineError::BadInput(format!(
            "{} needs a problem size of at least 2",
            algo.name()
        )));
    }

    let plan = match durs {
        None => elimination_plan(algo, n, mapping, 1),
        Some(d) => {
            if d.len() != algo.levels(n) || d.iter().any(|&x| x < 1) {
                return Err(EngineError::BadInput(format!(
                    "need {} per-level durations ≥ 1, got {:?}",
                    algo.levels(n),
                    d
                )));
            }
            elimination_plan_timed(algo, n, mapping, 1, d)
        }
    };
    let mut sim = plan.instantiate::<Real>(false);
    plan.load(&mut sim, std::slice::from_ref(a));
    let stats = sim.run()?;

    let levels = algo.levels(n);
    let layout = OutputLayout::new(msize, levels, 0);
    let outs = sim.outputs();
    let expect = |stream: usize, want: usize| -> Result<&Vec<f64>, EngineError> {
        let s = &outs[stream];
        if s.len() == want {
            Ok(s)
        } else {
            Err(EngineError::Corrupt {
                instance: 0,
                detail: format!("output stream {stream} has {} of {want} words", s.len()),
            })
        }
    };

    let mut f = DenseMatrix::<Real>::zeros(msize, msize);
    for k in 0..levels {
        let lcol = expect(layout.lcol(0, k), msize - k)?;
        for (r, &v) in lcol.iter().enumerate() {
            f.set(k + r, k, v);
        }
        for h in k + 1..msize {
            let head = expect(layout.head(0, k, h), 1)?;
            f.set(k, h, head[0]);
        }
    }
    for h in levels..msize {
        let tail = expect(layout.tail(0, h), msize - levels)?;
        for (r, &v) in tail.iter().enumerate() {
            f.set(levels + r, h, v);
        }
    }
    Ok((f, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(msize: usize, seed: u64) -> DenseMatrix<Real> {
        elimination_input(msize, seed)
    }

    /// Straight-line in-place elimination: the bit-exact reference.
    fn elimination_reference(a: &DenseMatrix<Real>, levels: usize) -> DenseMatrix<Real> {
        let n = a.rows();
        let mut x = a.clone();
        for k in 0..levels {
            for i in k + 1..n {
                let l = x.get(i, k) / x.get(k, k);
                x.set(i, k, l);
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let v = x.get(i, j) - x.get(i, k) * x.get(k, j);
                    x.set(i, j, v);
                }
            }
        }
        x
    }

    fn assert_bit_equal(got: &DenseMatrix<Real>, want: &DenseMatrix<Real>, tag: &str) {
        let n = got.rows();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(got.get(i, j), want.get(i, j), "{tag} ({i},{j})");
            }
        }
    }

    #[test]
    fn lu_linear_matches_reference_across_cell_counts() {
        for n in [2usize, 3, 5, 8] {
            let a = test_matrix(n, n as u64);
            let want = elimination_reference(&a, n - 1);
            for m in [1usize, 2, 3, 4, 7] {
                let (got, stats) =
                    run_elimination(Algo::Lu, EliminationMapping::Linear { m }, &a).unwrap();
                assert_bit_equal(&got, &want, &format!("n={n} m={m}"));
                assert_eq!(stats.memory_connections, m + 1);
            }
        }
    }

    #[test]
    fn lu_grid_matches_reference_across_sides() {
        for n in [3usize, 5, 8] {
            let a = test_matrix(n, 40 + n as u64);
            let want = elimination_reference(&a, n - 1);
            for s in [1usize, 2, 3] {
                let (got, stats) =
                    run_elimination(Algo::Lu, EliminationMapping::Grid { s }, &a).unwrap();
                assert_bit_equal(&got, &want, &format!("n={n} s={s}"));
                assert_eq!(stats.memory_connections, 2 * s);
            }
        }
    }

    #[test]
    fn faddeev_matches_reference_on_both_mappings() {
        let n = 3;
        let a = test_matrix(2 * n, 7);
        let want = elimination_reference(&a, n);
        for mapping in [
            EliminationMapping::Linear { m: 2 },
            EliminationMapping::Linear { m: 4 },
            EliminationMapping::Grid { s: 2 },
        ] {
            let (got, _) = run_elimination(Algo::Faddeev, mapping, &a).unwrap();
            assert_bit_equal(&got, &want, &format!("{mapping:?}"));
        }
    }

    #[test]
    fn useful_ops_match_the_generic_graph() {
        let n = 6;
        let a = test_matrix(n, 3);
        let (_, stats) =
            run_elimination(Algo::Lu, EliminationMapping::Linear { m: 3 }, &a).unwrap();
        assert_eq!(stats.useful_ops, GenericGGraph::lu(n).total_useful_ops());
    }

    fn lu_durations(n: usize) -> Vec<u32> {
        level_durations(Algo::Lu, n)
    }

    #[test]
    fn varying_durations_never_change_the_result() {
        let n = 7;
        let a = test_matrix(n, 9);
        let (want, uniform) =
            run_elimination(Algo::Lu, EliminationMapping::Linear { m: 3 }, &a).unwrap();
        for mapping in [
            EliminationMapping::Linear { m: 3 },
            EliminationMapping::Grid { s: 2 },
        ] {
            let (got, timed) =
                run_elimination_timed(Algo::Lu, mapping, &a, &lu_durations(n)).unwrap();
            assert_bit_equal(&got, &want, &format!("{mapping:?} timed"));
            assert!(timed.cycles > uniform.cycles, "durations must cost cycles");
        }
    }

    #[test]
    fn linear_beats_grid_occupancy_under_varying_times() {
        // §4.3: with monotone per-row durations, linear G-sets never mix
        // times (one row per set) while an s×s block chains a fast row
        // behind a slow one, throttling it to the slow row's word rate.
        // At equal cell counts (m = s² = 4) measured occupancy must favor
        // the linear chain.
        let n = 12;
        let a = test_matrix(n, 5);
        let durs = lu_durations(n);
        let (_, lin) =
            run_elimination_timed(Algo::Lu, EliminationMapping::Linear { m: 4 }, &a, &durs)
                .unwrap();
        let (_, grid) =
            run_elimination_timed(Algo::Lu, EliminationMapping::Grid { s: 2 }, &a, &durs).unwrap();
        assert!(
            lin.occupancy() >= grid.occupancy(),
            "linear {} < grid {}",
            lin.occupancy(),
            grid.occupancy()
        );
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let a = test_matrix(5, 1); // odd size: no Faddeev compound
        assert!(matches!(
            run_elimination(Algo::Faddeev, EliminationMapping::Linear { m: 2 }, &a),
            Err(EngineError::BadInput(_))
        ));
        assert!(matches!(
            run_elimination(Algo::Lu, EliminationMapping::Linear { m: 0 }, &a),
            Err(EngineError::BadInput(_))
        ));
        let tiny = test_matrix(1, 1);
        assert!(matches!(
            run_elimination(Algo::Lu, EliminationMapping::Linear { m: 1 }, &tiny),
            Err(EngineError::BadInput(_))
        ));
    }
}
