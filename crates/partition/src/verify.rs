//! ABFT-style result verification for closure engines.
//!
//! A transient fault inside the array (see `systolic-arraysim::inject`) can
//! silently corrupt the closure an engine returns. Re-running Warshall on
//! the host to check every instance would cost the same O(n³) the array was
//! bought to avoid, so the [`Verifier`] instead exploits algebraic
//! invariants every correct closure `R = A⁺` (reflexive form) must satisfy
//! over a [`PathSemiring`]:
//!
//! 1. **Reflexive diagonal** — `R[i][i] = 1̄` for all `i` (O(n)).
//! 2. **Containment** — `refl(A) ⊑ R`, i.e. `refl(A)[i][j] ⊕ R[i][j] =
//!    R[i][j]` (O(n²)); the closure may only *add* reachability.
//! 3. **Checksum fixed points** — the ⊕-fold checksums `s[i] = ⊕_j
//!    R[i][j]` (row) and `t[j] = ⊕_i R[i][j]` (column) must satisfy `R ⊗ s
//!    = s` and `tᵀ ⊗ R = tᵀ` (O(n²) each). This is the ABFT step: a
//!    correct closure is idempotent (`R ⊗ R = R`), and folding that matrix
//!    identity with `⊕` over columns (rows) collapses one side to the
//!    checksum vector because `⊗` distributes over `⊕`. A corrupted entry
//!    perturbs one product term of a fold and, since path semirings are
//!    selective in practice (the fold takes the *best* term), generically
//!    breaks the fixed point somewhere along the affected row/column.
//! 4. **Idempotence** — `R ⊗ R = R` itself, either in full (O(n³), exact)
//!    or spot-checked on a deterministic sample of rows (O(samples · n²)).
//! 5. **Justification (Bellman minimality)** — for every off-diagonal
//!    entry, `R[i][j] = refl(A)[i][j] ⊕ ⊕_{k∉{i,j}} R[i][k] ⊗ R[k][j]`.
//!    Idempotence only bounds the result from one side (`R ⊗ R ⊑ R`);
//!    justification demands that each entry is *achieved* — by the direct
//!    edge or through a witness vertex. It is sound because a path-semiring
//!    closure folds over simple paths, and a simple path of length ≥ 2 has
//!    an interior vertex `k ∉ {i, j}`. This kills the classic phantom: a
//!    fabricated entry with no witness (e.g. a source→sink pair) leaves the
//!    matrix idempotent but unjustified. Spot mode samples rows here too.
//!
//! Together the checks reject any result that is not the exact closure of
//! *some* graph containing `A` whose extra reachability is self-witnessing.
//! The remaining blind spot — a corruption whose transitive consequences
//! were fully propagated by the rest of the computation, yielding the
//! closure of a different containing input with every phantom entry
//! witnessed (the fabricated edge must point into a cycle) — is
//! indistinguishable from a correct answer by any invariant checker; only
//! a reference comparison catches it, which is what campaigns do to
//! measure the escape rate.

use systolic_semiring::{matmul, reflexive, DenseMatrix, PathSemiring, Semiring};
use systolic_util::Rng;

/// How thoroughly [`Verifier::verify`] checks idempotence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum IdempotenceMode {
    /// Full `R ⊗ R = R` (O(n³)).
    Full,
    /// Deterministically sampled rows (O(samples · n²)).
    Spot {
        /// Rows sampled per instance.
        samples: usize,
        /// Seed of the row sampler.
        seed: u64,
    },
}

/// Checks closure results against the invariants listed in the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verifier {
    idempotence: IdempotenceMode,
}

impl Verifier {
    /// A verifier that checks idempotence in full (O(n³) — same order as
    /// recomputing the closure, but a multiply is cheaper than a closure
    /// and catches *every* invariant-visible corruption).
    pub fn full() -> Self {
        Self {
            idempotence: IdempotenceMode::Full,
        }
    }

    /// A verifier that spot-checks idempotence on `samples`
    /// deterministically chosen rows (seeded by `seed` and the instance
    /// index, so repeated runs sample identically). Checks 1–3 stay exact;
    /// total cost O(n² · samples).
    pub fn spot(samples: usize, seed: u64) -> Self {
        Self {
            idempotence: IdempotenceMode::Spot { samples, seed },
        }
    }

    /// Verifies that `result` is plausible as `refl(input)⁺`.
    ///
    /// `instance` indexes the batch (diagnostics and spot-sample seeding).
    ///
    /// # Errors
    /// The first violated invariant, naming the check and the matrix
    /// coordinate where it failed.
    pub fn verify<S: PathSemiring>(
        &self,
        instance: usize,
        input: &DenseMatrix<S>,
        result: &DenseMatrix<S>,
    ) -> Result<(), String> {
        let n = input.rows();
        if result.rows() != n || result.cols() != n {
            return Err(format!(
                "shape: result is {}x{}, expected {n}x{n}",
                result.rows(),
                result.cols()
            ));
        }

        // 1. Reflexive diagonal.
        let one = S::one();
        for i in 0..n {
            if *result.get(i, i) != one {
                return Err(format!(
                    "diagonal: R[{i}][{i}] = {:?}, expected {one:?}",
                    result.get(i, i)
                ));
            }
        }

        // 2. Containment refl(A) ⊑ R.
        let base = reflexive(input);
        for i in 0..n {
            for j in 0..n {
                let a = base.get(i, j);
                let r = result.get(i, j);
                if S::add(a, r) != *r {
                    return Err(format!(
                        "containment: R[{i}][{j}] = {r:?} does not absorb input {a:?}"
                    ));
                }
            }
        }

        // 3. Checksum fixed points R ⊗ s = s and tᵀ ⊗ R = tᵀ.
        let s = row_folds(result);
        for i in 0..n {
            let mut acc = S::zero();
            for (k, sk) in s.iter().enumerate() {
                acc = S::add(&acc, &S::mul(result.get(i, k), sk));
            }
            if acc != s[i] {
                return Err(format!(
                    "row checksum: (R ⊗ s)[{i}] = {acc:?}, expected s[{i}] = {:?}",
                    s[i]
                ));
            }
        }
        let t = col_folds(result);
        for j in 0..n {
            let mut acc = S::zero();
            for (k, tk) in t.iter().enumerate() {
                acc = S::add(&acc, &S::mul(tk, result.get(k, j)));
            }
            if acc != t[j] {
                return Err(format!(
                    "column checksum: (tᵀ ⊗ R)[{j}] = {acc:?}, expected t[{j}] = {:?}",
                    t[j]
                ));
            }
        }

        // 5 (shared body). Justification of one row: each off-diagonal
        // entry must be achieved by the direct edge or a witness vertex.
        let justify_row = |i: usize| -> Result<(), String> {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let mut acc = base.get(i, j).clone();
                for k in 0..n {
                    if k != i && k != j {
                        acc = S::add(&acc, &S::mul(result.get(i, k), result.get(k, j)));
                    }
                }
                if acc != *result.get(i, j) {
                    return Err(format!(
                        "justification: R[{i}][{j}] = {:?} but direct edge ⊕ best \
                         witness gives {acc:?}",
                        result.get(i, j)
                    ));
                }
            }
            Ok(())
        };

        // 4 + 5. Idempotence and justification, full or row-sampled.
        match self.idempotence {
            IdempotenceMode::Full => {
                let rr = matmul(result, result);
                for i in 0..n {
                    for j in 0..n {
                        if rr.get(i, j) != result.get(i, j) {
                            return Err(format!(
                                "idempotence: (R ⊗ R)[{i}][{j}] = {:?} ≠ R[{i}][{j}] = {:?}",
                                rr.get(i, j),
                                result.get(i, j)
                            ));
                        }
                    }
                }
                for i in 0..n {
                    justify_row(i)?;
                }
            }
            IdempotenceMode::Spot { samples, seed } => {
                let mut rng =
                    Rng::seed_from_u64(seed ^ (instance as u64).wrapping_mul(0x9e37_79b9));
                for _ in 0..samples.min(n) {
                    let i = rng.gen_usize(n);
                    for j in 0..n {
                        let mut acc = S::zero();
                        for k in 0..n {
                            acc = S::add(&acc, &S::mul(result.get(i, k), result.get(k, j)));
                        }
                        if acc != *result.get(i, j) {
                            return Err(format!(
                                "idempotence (spot): (R ⊗ R)[{i}][{j}] = {acc:?} \
                                 ≠ R[{i}][{j}] = {:?}",
                                result.get(i, j)
                            ));
                        }
                    }
                    justify_row(i)?;
                }
            }
        }

        Ok(())
    }
}

/// Row checksums `s[i] = ⊕_j R[i][j]`.
pub fn row_folds<S: Semiring>(m: &DenseMatrix<S>) -> Vec<S::Elem> {
    (0..m.rows())
        .map(|i| m.row(i).iter().fold(S::zero(), |acc, e| S::add(&acc, e)))
        .collect()
}

/// Column checksums `t[j] = ⊕_i R[i][j]`.
pub fn col_folds<S: Semiring>(m: &DenseMatrix<S>) -> Vec<S::Elem> {
    let mut t = vec![S::zero(); m.cols()];
    for i in 0..m.rows() {
        for (j, e) in m.row(i).iter().enumerate() {
            t[j] = S::add(&t[j], e);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_semiring::{warshall, Bool, MinPlus};
    use systolic_util::Rng;

    fn gnp_bool(n: usize, p: f64, seed: u64) -> DenseMatrix<Bool> {
        let mut rng = Rng::seed_from_u64(seed);
        DenseMatrix::from_fn(n, n, |i, j| i != j && rng.gen_bool(p))
    }

    #[test]
    fn accepts_correct_closures() {
        for seed in 0..8 {
            let a = gnp_bool(9, 0.2, seed);
            let r = warshall(&a);
            Verifier::full().verify(0, &a, &r).unwrap();
            Verifier::spot(3, 42).verify(seed as usize, &a, &r).unwrap();
        }
    }

    #[test]
    fn accepts_minplus_closures() {
        let mut rng = Rng::seed_from_u64(5);
        let a = DenseMatrix::<MinPlus>::from_fn(8, 8, |i, j| {
            if i != j && rng.gen_bool(0.3) {
                rng.gen_range_u64(1, 10)
            } else {
                MinPlus::zero()
            }
        });
        let r = warshall(&a);
        Verifier::full().verify(0, &a, &r).unwrap();
    }

    #[test]
    fn rejects_shape_mismatch() {
        let a = gnp_bool(4, 0.3, 1);
        let bad = DenseMatrix::<Bool>::zeros(3, 3);
        assert!(Verifier::full()
            .verify(0, &a, &bad)
            .unwrap_err()
            .starts_with("shape"));
    }

    #[test]
    fn rejects_broken_diagonal() {
        let a = gnp_bool(5, 0.3, 2);
        let mut r = warshall(&a);
        r.set(2, 2, false);
        let err = Verifier::full().verify(0, &a, &r).unwrap_err();
        assert!(err.starts_with("diagonal"), "{err}");
    }

    #[test]
    fn rejects_dropped_input_edge() {
        let mut a = DenseMatrix::<Bool>::zeros(4, 4);
        a.set(0, 3, true);
        let mut r = warshall(&a);
        r.set(0, 3, false);
        let err = Verifier::full().verify(0, &a, &r).unwrap_err();
        assert!(err.starts_with("containment"), "{err}");
    }

    #[test]
    fn every_single_phantom_edge_is_rejected() {
        // A lone fabricated 1 in a correct closure has no witness vertex
        // (one would imply the entry was already reachable), so the
        // justification check catches every single-entry phantom — even
        // the source→sink ones that leave the matrix idempotent.
        for seed in [3u64, 11, 29] {
            let a = gnp_bool(6, 0.15, seed);
            let r = warshall(&a);
            let mut flips = 0;
            for i in 0..6 {
                for j in 0..6 {
                    if i == j || *r.get(i, j) {
                        continue;
                    }
                    let mut bad = r.clone();
                    bad.set(i, j, true);
                    flips += 1;
                    let err = Verifier::full().verify(0, &a, &bad).unwrap_err();
                    let idempotent = matmul(&bad, &bad) == bad;
                    assert!(
                        !idempotent || err.starts_with("justification"),
                        "idempotent phantom ({i},{j}) must fall to justification, got {err}"
                    );
                }
            }
            assert!(flips > 0);
        }
    }

    #[test]
    fn self_witnessing_phantom_closure_is_the_documented_blind_spot() {
        // The closure of a *different* containing input whose extra
        // reachability is self-witnessing passes every invariant: corrupt
        // 0→1 where 1 sits on a cycle 1 ⇄ 2, then close transitively.
        // R'[0][1] is witnessed by k = 2 (0→2 via 1, 2→1 on the cycle),
        // so no invariant checker can tell R' from a correct answer.
        let mut a = DenseMatrix::<Bool>::zeros(4, 4);
        a.set(1, 2, true);
        a.set(2, 1, true);
        let mut bigger = a.clone();
        bigger.set(0, 1, true);
        let masquerade = warshall(&bigger);
        assert_ne!(masquerade, warshall(&a));
        Verifier::full().verify(0, &a, &masquerade).unwrap();
    }

    #[test]
    fn rejects_minplus_understated_distance() {
        // Understating an interior distance fabricates a shortcut that
        // propagates (0→2 feeds 2→3), breaking idempotence.
        let mut a = DenseMatrix::<MinPlus>::zeros(5, 5);
        a.set(0, 1, 4);
        a.set(1, 2, 4);
        a.set(2, 3, 4);
        let mut r = warshall(&a);
        r.set(0, 2, 1); // true distance is 8; 1 + r[2][3] < r[0][3] propagates
        assert!(Verifier::full().verify(0, &a, &r).is_err());
    }

    #[test]
    fn spot_verifier_is_deterministic() {
        let a = gnp_bool(7, 0.2, 4);
        let mut r = warshall(&a);
        // Corrupt a single non-diagonal entry that survives containment.
        'outer: for i in 0..7 {
            for j in 0..7 {
                if i != j && !*a.get(i, j) && *r.get(i, j) {
                    r.set(i, j, false);
                    break 'outer;
                }
            }
        }
        let v = Verifier::spot(2, 9);
        let first = v.verify(3, &a, &r);
        assert_eq!(first, v.verify(3, &a, &r), "same sample rows each run");
    }

    #[test]
    fn folds_shapes() {
        let a = gnp_bool(4, 0.5, 6);
        assert_eq!(row_folds(&a).len(), 4);
        assert_eq!(col_folds(&a).len(), 4);
    }
}
