//! The mapping layer: pluggable G-set-to-array mappings behind one
//! generic executor.
//!
//! The paper's contribution is a *family* of mappings from the skewed
//! G-graph onto fixed-size arrays — cut-and-pile (LPGS) onto a chain or a
//! grid, the fixed-size arrays of §3.2, coalescing (LSGP, §2). What a
//! mapping actually decides is small: how many cells, which cell runs
//! which G-node, and how the pivot/column streams travel between them.
//! Everything else — batch validation, plan memoization, simulator
//! recycling, fault-plan arming, trace capture, output-column reassembly —
//! is identical machinery.
//!
//! [`Mapping`] captures exactly the per-mapping decisions: a name, the
//! cell count, and the [`CompiledPlan`] builder for a problem shape.
//! [`MappedEngine`] owns the shared machinery exactly once. The concrete
//! engines ([`crate::LinearEngine`], [`crate::FixedArrayEngine`],
//! [`crate::FixedLinearEngine`], [`crate::GridEngine`],
//! [`crate::LsgpEngine`]) are type aliases `MappedEngine<SomeMapping>`
//! plus inherent constructors — their run-time behavior is byte-identical
//! to the pre-refactor engines because the executor below *is* the old
//! `LinearEngine` run path, verbatim.

use crate::engine::{prepare_batch, ClosureEngine, EngineError};
use crate::plan::{CompiledPlan, PlanCache, SimSlot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use systolic_arraysim::{ArraySim, FaultEvent, FaultPlan, RunStats};
use systolic_semiring::{DenseMatrix, PathSemiring};

/// How G-sets land on cells: the per-mapping third of an engine.
///
/// A mapping is pure geometry/schedule — it never touches matrix values,
/// so one implementation serves every semiring, and the compiled plan it
/// returns may be memoized per `(n, batch_len)` shape and shared across
/// engine clones.
pub trait Mapping: Clone + std::fmt::Debug + Send + Sync + 'static {
    /// Engine name for reports (the [`ClosureEngine::name`] of the
    /// executor).
    fn name(&self) -> &'static str;

    /// Number of processing cells, or 0 when the array size depends on
    /// the problem size (the fixed-size mappings).
    fn cells(&self) -> usize;

    /// Checks the mapping's own parameters (e.g. a positive cell count).
    ///
    /// Called by the executor before any plan is built; a mapping with
    /// impossible geometry reports [`EngineError::BadInput`] instead of
    /// panicking mid-compile. The default accepts everything.
    ///
    /// # Errors
    /// [`EngineError::BadInput`] describing the bad parameter.
    fn validate(&self) -> Result<(), EngineError> {
        Ok(())
    }

    /// Compiles the full schedule for one `(n, batch_len)` shape: cell
    /// programs, stream wiring, host demand order, cycle budget.
    fn build_plan(&self, n: usize, batch_len: usize) -> CompiledPlan;

    /// Smallest batch slice processed at full efficiency (see
    /// [`ClosureEngine::preferred_chunk`]).
    fn preferred_chunk(&self) -> usize {
        1
    }
}

/// The one generic executor: runs any [`Mapping`]'s compiled plans on the
/// cycle-level simulator with plan memoization, simulator recycling,
/// fault-plan arming and trace capture.
#[derive(Debug)]
pub struct MappedEngine<M: Mapping> {
    mapping: M,
    trace: bool,
    /// Transient-fault plan armed on every run (None = clean array).
    plan: Option<FaultPlan>,
    /// Per-run reseed nonce: consecutive `closure_many` calls on the same
    /// engine see decorrelated fault sequences (a retry must not replay the
    /// identical fault), while a fresh engine with the same plan reproduces
    /// the same sequence of sequences.
    nonce: AtomicU64,
    /// Faults applied during the most recent run (success or failure).
    last_faults: Mutex<Vec<FaultEvent>>,
    /// Compiled schedules per `(n, batch_len)`, shared across clones.
    plans: PlanCache,
    /// Reusable simulator from the previous run (per engine value).
    sims: SimSlot,
}

impl<M: Mapping> Clone for MappedEngine<M> {
    fn clone(&self) -> Self {
        Self {
            mapping: self.mapping.clone(),
            trace: self.trace,
            plan: self.plan.clone(),
            nonce: AtomicU64::new(self.nonce.load(Ordering::Relaxed)),
            last_faults: Mutex::new(Vec::new()),
            plans: self.plans.clone(),
            sims: SimSlot::default(),
        }
    }
}

impl<M: Mapping + Default> Default for MappedEngine<M> {
    fn default() -> Self {
        Self::from_mapping(M::default())
    }
}

impl<M: Mapping> MappedEngine<M> {
    /// Creates an executor over the given mapping.
    pub fn from_mapping(mapping: M) -> Self {
        Self {
            mapping,
            trace: false,
            plan: None,
            nonce: AtomicU64::new(0),
            last_faults: Mutex::new(Vec::new()),
            plans: PlanCache::default(),
            sims: SimSlot::default(),
        }
    }

    /// The mapping this executor runs.
    pub fn mapping(&self) -> &M {
        &self.mapping
    }

    /// Enables task-span tracing; the run's `RunStats::spans` then holds
    /// the full schedule for Gantt rendering (Fig. 20 visualization).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self.sims.clear(); // a cached simulator would lack span buffers
        self
    }

    /// Arms a transient-fault plan: every subsequent run injects faults
    /// from a fresh reseeding of `plan` (see the `nonce` field docs).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Faults applied during the most recent run on this engine value
    /// (empty without a plan). Recorded on both success and error, so a
    /// deadlocked or corrupt run can still be blamed.
    pub fn recent_fault_events(&self) -> Vec<FaultEvent> {
        self.last_faults.lock().expect("fault log poisoned").clone()
    }

    /// Takes the most recent run's fault events without cloning them.
    pub(crate) fn take_recent_fault_events(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.last_faults.lock().expect("fault log poisoned"))
    }

    /// Drops the memoized plans and the cached simulator, forcing the next
    /// call to compile from scratch (the fault-nonce sequence continues
    /// unchanged). Mainly for cache-vs-fresh equivalence tests.
    pub fn clear_caches(&self) {
        self.plans.clear();
        self.sims.clear();
    }

    /// True when a plan for the `(n, batch_len)` shape is already compiled
    /// — the next same-shape run is *warm* (no schedule rebuild). The
    /// admission batcher uses this to prove a settled server never
    /// recompiles.
    pub fn has_plan(&self, n: usize, batch_len: usize) -> bool {
        self.plans.contains(n, batch_len)
    }

    /// Runs a prepared (reflexive) batch through the cached plan/simulator,
    /// arming `armed` verbatim when given. The fault log is recorded into
    /// `last_faults` iff a plan was armed.
    fn run_batch<S: PathSemiring>(
        &self,
        n: usize,
        batch: &[DenseMatrix<S>],
        armed: Option<FaultPlan>,
    ) -> Result<(Vec<DenseMatrix<S>>, RunStats), EngineError> {
        self.mapping.validate()?;
        let plan = self
            .plans
            .get_or_build(n, batch.len(), || self.mapping.build_plan(n, batch.len()));
        let mut sim: ArraySim<S> = self
            .sims
            .take(&plan)
            .unwrap_or_else(|| plan.instantiate(self.trace));
        plan.load(&mut sim, batch);

        let record = armed.is_some();
        if let Some(fp) = armed {
            sim.set_fault_plan(fp);
        }
        let run = sim.run();
        if record {
            // Record what was injected even when the run failed — blame
            // attribution needs the sites of a deadlocked attempt too.
            *self.last_faults.lock().expect("fault log poisoned") = sim.take_fault_events();
        }
        let stats = run?;
        let outs = sim.outputs();
        let out0 = 0;
        let mut results = Vec::with_capacity(batch.len());
        for inst in 0..batch.len() {
            let mut r = DenseMatrix::<S>::zeros(n, n);
            for j in 0..n {
                let col = &outs[out0 + inst * n + j];
                if col.len() != n {
                    // A dropped/duplicated stream word that still drained:
                    // structurally corrupt output, not a simulator bug.
                    return Err(EngineError::Corrupt {
                        instance: inst,
                        detail: format!("output column {j} has {} of {n} words", col.len()),
                    });
                }
                r.set_col(j, col);
            }
            results.push(r);
        }
        self.sims.store(plan, sim);
        Ok((results, stats))
    }

    /// [`ClosureEngine::closure_many`] with an explicit pre-reseeded fault
    /// plan, bypassing this engine's own plan/nonce. Lets the degraded
    /// array wrapper reuse a persistent inner engine (and its caches) while
    /// reproducing its historical reseeding chain exactly.
    pub(crate) fn closure_many_with_plan<S: PathSemiring>(
        &self,
        mats: &[DenseMatrix<S>],
        armed: Option<FaultPlan>,
    ) -> Result<(Vec<DenseMatrix<S>>, RunStats), EngineError> {
        let (n, batch) = prepare_batch(mats)?;
        self.run_batch(n, &batch, armed)
    }
}

impl<M: Mapping, S: PathSemiring> ClosureEngine<S> for MappedEngine<M> {
    fn name(&self) -> &'static str {
        self.mapping.name()
    }

    fn cells(&self) -> usize {
        self.mapping.cells()
    }

    fn preferred_chunk(&self) -> usize {
        self.mapping.preferred_chunk()
    }

    fn closure_many(
        &self,
        mats: &[DenseMatrix<S>],
    ) -> Result<(Vec<DenseMatrix<S>>, RunStats), EngineError> {
        let (n, batch) = prepare_batch(mats)?;
        let armed = self
            .plan
            .as_ref()
            .map(|p| p.reseeded(self.nonce.fetch_add(1, Ordering::Relaxed)));
        self.run_batch(n, &batch, armed)
    }
}
