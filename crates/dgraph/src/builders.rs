//! Builders for fully-parallel dependence graphs.
//!
//! Coordinates follow the paper: level `0` holds the input terminals
//! (`X⁰ = A`), and level `k ≥ 1` computes `X^k` using pivot `k-1`
//! (0-indexed). Layout positions place element `(i, j)` of level `k` at
//! drawing coordinates `x = j`, `y = k·n + i`, which is how Fig. 10 draws
//! the graph (levels stacked vertically).

use crate::graph::DependenceGraph;
use crate::ids::{Coord, NodeId, OpKind, Port, Pos};

/// Tracks the most recent producer of each matrix element while a builder
/// walks the levels.
struct LastWriter {
    n: usize,
    slots: Vec<(NodeId, Port)>,
}

impl LastWriter {
    fn new(n: usize, init: impl Fn(usize, usize) -> NodeId) -> Self {
        let mut slots = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                slots.push((init(i, j), Port::X));
            }
        }
        Self { n, slots }
    }
    #[inline]
    fn get(&self, i: usize, j: usize) -> (NodeId, Port) {
        self.slots[i * self.n + j]
    }
    #[inline]
    fn set(&mut self, i: usize, j: usize, v: (NodeId, Port)) {
        self.slots[i * self.n + j] = v;
    }
}

fn add_inputs(g: &mut DependenceGraph, n: usize) -> Vec<NodeId> {
    let mut ids = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let id = g.add_node(
                OpKind::Input,
                Coord::new(0, i as u32, j as u32),
                Pos::new(j as i64, i as i64),
                0,
            );
            g.set_input(i as u32, j as u32, id);
            ids.push(id);
        }
    }
    ids
}

/// Fully-parallel transitive-closure dependence graph of **Fig. 10**:
/// every element `(i, j)` gets a `Fuse` node at every level, `n³` compute
/// nodes in total, with the two kinds of broadcast the paper describes
/// (pivot-row elements fan out down their column, pivot-column elements fan
/// out along their row).
pub fn closure_full(n: usize) -> DependenceGraph {
    let mut g = DependenceGraph::new(n);
    let inputs = add_inputs(&mut g, n);
    let mut last = LastWriter::new(n, |i, j| inputs[i * n + j]);
    for k in 0..n {
        let level = (k + 1) as u32;
        // Gather the producers of X^k before rewiring `last` for X^{k+1}.
        let prev: Vec<(NodeId, Port)> = (0..n * n).map(|t| last.get(t / n, t % n)).collect();
        for i in 0..n {
            for j in 0..n {
                let id = g.add_node(
                    OpKind::Fuse,
                    Coord::new(level, i as u32, j as u32),
                    Pos::new(j as i64, (level as i64) * n as i64 + i as i64),
                    1,
                );
                let (xs, xp) = prev[i * n + j];
                let (ps, pp) = prev[i * n + k];
                let (qs, qp) = prev[k * n + j];
                g.add_edge(xs, xp, id, Port::X);
                g.add_edge(ps, pp, id, Port::P);
                g.add_edge(qs, qp, id, Port::Q);
                last.set(i, j, (id, Port::X));
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            let (nd, p) = last.get(i, j);
            g.set_output(i as u32, j as u32, nd, p);
        }
    }
    g
}

/// Transitive-closure dependence graph with superfluous nodes removed
/// (**Fig. 11**): at level `k` the nodes with `i = k`, `j = k` or `i = j` do
/// not change their element (the paper's diagonal-element argument), so they
/// are elided and consumers read the element's previous producer directly.
///
/// Compute-node count is exactly `n(n-1)(n-2)` (§4.2).
pub fn closure_lean(n: usize) -> DependenceGraph {
    let mut g = DependenceGraph::new(n);
    let inputs = add_inputs(&mut g, n);
    let mut last = LastWriter::new(n, |i, j| inputs[i * n + j]);
    for k in 0..n {
        let level = (k + 1) as u32;
        let prev: Vec<(NodeId, Port)> = (0..n * n).map(|t| last.get(t / n, t % n)).collect();
        for i in 0..n {
            for j in 0..n {
                if i == k || j == k || i == j {
                    continue; // superfluous: x^{k+1}[i][j] = x^k[i][j]
                }
                let id = g.add_node(
                    OpKind::Fuse,
                    Coord::new(level, i as u32, j as u32),
                    Pos::new(j as i64, (level as i64) * n as i64 + i as i64),
                    1,
                );
                let (xs, xp) = prev[i * n + j];
                let (ps, pp) = prev[i * n + k];
                let (qs, qp) = prev[k * n + j];
                g.add_edge(xs, xp, id, Port::X);
                g.add_edge(ps, pp, id, Port::P);
                g.add_edge(qs, qp, id, Port::Q);
                last.set(i, j, (id, Port::X));
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            let (nd, p) = last.get(i, j);
            g.set_output(i as u32, j as u32, nd, p);
        }
    }
    g
}

/// Matrix-product dependence graph `C = A ⊗ B` for `n × n` operands: the
/// classical cube of `n³` multiply-accumulate nodes. Used as the substrate
/// of the Núñez–Torralba decomposition baseline (their sub-algorithms are
/// sequences of matrix multiplications) and for fan-out analyses.
///
/// Input-terminal convention: element `(i, j)` of `A` is registered as input
/// `(i, j)`; element `(i, j)` of `B` is registered as input `(n + i, j)`.
/// The accumulator chain starts at an elided zero (the first level's `X`
/// lane reads the `A⊗B` partial directly from a `Delay` seed node).
pub fn matmul_graph(n: usize) -> DependenceGraph {
    let mut g = DependenceGraph::new(n);
    // A inputs.
    let mut a_ids = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let id = g.add_node(
                OpKind::Input,
                Coord::new(0, i as u32, j as u32),
                Pos::new(j as i64, i as i64),
                0,
            );
            g.set_input(i as u32, j as u32, id);
            a_ids.push(id);
        }
    }
    // B inputs.
    let mut b_ids = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let id = g.add_node(
                OpKind::Input,
                Coord::new(0, (n + i) as u32, j as u32),
                Pos::new(j as i64, (n + i) as i64),
                0,
            );
            g.set_input((n + i) as u32, j as u32, id);
            b_ids.push(id);
        }
    }
    // Zero seeds for the accumulator chains (Delay nodes with no input act
    // as additive-identity sources for the evaluator).
    let mut last: Vec<(NodeId, Port)> = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let z = g.add_node(
                OpKind::Delay,
                Coord::new(0, i as u32, j as u32),
                Pos::new(j as i64, (2 * n + i) as i64),
                0,
            );
            last.push((z, Port::X));
        }
    }
    for k in 0..n {
        let level = (k + 1) as u32;
        for i in 0..n {
            for j in 0..n {
                let id = g.add_node(
                    OpKind::Fuse,
                    Coord::new(level, i as u32, j as u32),
                    Pos::new(j as i64, (level as i64) * n as i64 + i as i64),
                    1,
                );
                let (xs, xp) = last[i * n + j];
                g.add_edge(xs, xp, id, Port::X);
                g.add_edge(a_ids[i * n + k], Port::X, id, Port::P);
                g.add_edge(b_ids[k * n + j], Port::X, id, Port::Q);
                last[i * n + j] = (id, Port::X);
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            let (nd, p) = last[i * n + j];
            g.set_output(i as u32, j as u32, nd, p);
        }
    }
    g
}

/// LU-decomposition dependence graph (no pivoting), one of the paper's §4.3
/// examples of algorithms whose G-nodes have **varying computation time**:
/// level `k` touches a shrinking `(n-k-1)²` trapezoid, so path lengths (and
/// therefore G-node times) decrease monotonically across the graph
/// (Fig. 22a's tagged computation times).
pub fn lu_graph(n: usize) -> DependenceGraph {
    let mut g = DependenceGraph::new(n);
    let inputs = add_inputs(&mut g, n);
    let mut last = LastWriter::new(n, |i, j| inputs[i * n + j]);
    for k in 0..n.saturating_sub(1) {
        let level = (k + 1) as u32;
        let prev: Vec<(NodeId, Port)> = (0..n * n).map(|t| last.get(t / n, t % n)).collect();
        // Multiplier column: l_ik = x_ik / x_kk.
        let mut div_ids = vec![None; n];
        for i in k + 1..n {
            let id = g.add_node(
                OpKind::Div,
                Coord::new(level, i as u32, k as u32),
                Pos::new(k as i64, (level as i64) * n as i64 + i as i64),
                1,
            );
            let (xs, xp) = prev[i * n + k];
            let (ps, pp) = prev[k * n + k];
            g.add_edge(xs, xp, id, Port::X);
            g.add_edge(ps, pp, id, Port::P);
            last.set(i, k, (id, Port::X));
            div_ids[i] = Some(id);
        }
        // Trailing update: x_ij ← x_ij - l_ik · x_kj.
        for i in k + 1..n {
            for j in k + 1..n {
                let id = g.add_node(
                    OpKind::MulSub,
                    Coord::new(level, i as u32, j as u32),
                    Pos::new(j as i64, (level as i64) * n as i64 + i as i64),
                    1,
                );
                let (xs, xp) = prev[i * n + j];
                let (qs, qp) = prev[k * n + j];
                g.add_edge(xs, xp, id, Port::X);
                g.add_edge(div_ids[i].expect("divider exists"), Port::X, id, Port::P);
                g.add_edge(qs, qp, id, Port::Q);
                last.set(i, j, (id, Port::X));
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            let (nd, p) = last.get(i, j);
            g.set_output(i as u32, j as u32, nd, p);
        }
    }
    g
}

/// Faddeev-algorithm dependence graph: Gaussian elimination of the `A` block
/// of `[[A, B], [-C, D]]`, producing `D + C·A⁻¹·B` in the lower-right block.
/// Like LU it has a trapezoidal iteration space — the second §4.3 example of
/// varying G-node computation times (the paper's companion report \[21\]
/// partitions this algorithm).
///
/// The graph is over the `2n × 2n` augmented matrix; only the first `n`
/// pivots are eliminated.
pub fn faddeev_graph(n: usize) -> DependenceGraph {
    let m = 2 * n;
    let mut g = DependenceGraph::new(m);
    let inputs = add_inputs(&mut g, m);
    let mut last = LastWriter::new(m, |i, j| inputs[i * m + j]);
    for k in 0..n {
        let level = (k + 1) as u32;
        let prev: Vec<(NodeId, Port)> = (0..m * m).map(|t| last.get(t / m, t % m)).collect();
        let mut div_ids = vec![None; m];
        for i in k + 1..m {
            let id = g.add_node(
                OpKind::Div,
                Coord::new(level, i as u32, k as u32),
                Pos::new(k as i64, (level as i64) * m as i64 + i as i64),
                1,
            );
            let (xs, xp) = prev[i * m + k];
            let (ps, pp) = prev[k * m + k];
            g.add_edge(xs, xp, id, Port::X);
            g.add_edge(ps, pp, id, Port::P);
            last.set(i, k, (id, Port::X));
            div_ids[i] = Some(id);
        }
        for i in k + 1..m {
            for j in k + 1..m {
                let id = g.add_node(
                    OpKind::MulSub,
                    Coord::new(level, i as u32, j as u32),
                    Pos::new(j as i64, (level as i64) * m as i64 + i as i64),
                    1,
                );
                let (xs, xp) = prev[i * m + j];
                let (qs, qp) = prev[k * m + j];
                g.add_edge(xs, xp, id, Port::X);
                g.add_edge(div_ids[i].expect("divider exists"), Port::X, id, Port::P);
                g.add_edge(qs, qp, id, Port::Q);
                last.set(i, j, (id, Port::X));
            }
        }
    }
    for i in 0..m {
        for j in 0..m {
            let (nd, p) = last.get(i, j);
            g.set_output(i as u32, j as u32, nd, p);
        }
    }
    g
}

/// Givens-rotation triangularization (QR) dependence graph — the paper's
/// remaining §4.3 example. Wave `k` generates one rotation against the
/// pivot row (`Rot` node at `(k, k+?, k)` per eliminated row, done row by
/// row here in the standard systolic order: row `i > k` is rotated against
/// row `k`) and applies it across columns `j > k` (`ApplyRot` nodes).
///
/// Structurally (counts, varying path lengths) this is what §4.3 uses; like
/// LU it has a shrinking trapezoid per wave.
pub fn givens_graph(n: usize) -> DependenceGraph {
    let mut g = DependenceGraph::new(n);
    let inputs = add_inputs(&mut g, n);
    let mut last = LastWriter::new(n, |i, j| inputs[i * n + j]);
    let mut level = 0u32;
    for k in 0..n.saturating_sub(1) {
        for i in k + 1..n {
            level += 1;
            let prev: Vec<(NodeId, Port)> = (0..n * n).map(|t| last.get(t / n, t % n)).collect();
            // Rotation generation from the two leading elements.
            let rot = g.add_node(
                OpKind::Rot,
                Coord::new(level, i as u32, k as u32),
                Pos::new(k as i64, (level as i64) * n as i64 + i as i64),
                1,
            );
            let (xs, xp) = prev[k * n + k];
            let (ps, pp) = prev[i * n + k];
            g.add_edge(xs, xp, rot, Port::X);
            g.add_edge(ps, pp, rot, Port::P);
            last.set(i, k, (rot, Port::X));
            last.set(k, k, (rot, Port::P));
            // Application across the remaining columns: each ApplyRot
            // updates the (k, j)/(i, j) pair; we track the updated pair via
            // the node's X (row k part) and P (row i part) lanes.
            for j in k + 1..n {
                let id = g.add_node(
                    OpKind::ApplyRot,
                    Coord::new(level, i as u32, j as u32),
                    Pos::new(j as i64, (level as i64) * n as i64 + i as i64),
                    1,
                );
                let (ks, kp) = prev[k * n + j];
                let (is_, ip) = prev[i * n + j];
                g.add_edge(ks, kp, id, Port::X);
                g.add_edge(is_, ip, id, Port::P);
                g.add_edge(rot, Port::X, id, Port::Q);
                last.set(k, j, (id, Port::X));
                last.set(i, j, (id, Port::P));
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            let (nd, p) = last.get(i, j);
            g.set_output(i as u32, j as u32, nd, p);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn givens_graph_counts_are_trapezoidal() {
        let n = 5;
        let g = givens_graph(n);
        g.validate().unwrap();
        // For each (k, i>k): 1 Rot + (n-k-1) ApplyRot.
        let expected: usize = (0..n - 1).map(|k| (n - k - 1) * (1 + (n - k - 1))).sum();
        assert_eq!(g.compute_node_count(), expected);
        // Rotations are broadcast to their row's appliers before the
        // transformation passes, like every other algorithm here.
        let bc = crate::analysis::broadcast_census(&g);
        assert!(bc.max_fanout >= n - 2);
    }

    #[test]
    fn closure_full_counts_match_fig10() {
        for n in [2usize, 3, 4, 6] {
            let g = closure_full(n);
            g.validate().unwrap();
            assert_eq!(g.compute_node_count(), n * n * n, "n={n}");
            assert_eq!(g.node_count(), n * n * n + n * n);
            // Every compute node has exactly 3 in-edges.
            assert_eq!(g.edge_count(), 3 * n * n * n);
        }
    }

    #[test]
    fn closure_lean_counts_match_fig11() {
        for n in [3usize, 4, 5, 8] {
            let g = closure_lean(n);
            g.validate().unwrap();
            assert_eq!(
                g.compute_node_count(),
                n * (n - 1) * (n - 2),
                "useful nodes for n={n}"
            );
        }
    }

    #[test]
    fn lean_removes_exactly_3n2_minus_2n_per_paper() {
        for n in [3usize, 4, 7] {
            let full = closure_full(n).compute_node_count();
            let lean = closure_lean(n).compute_node_count();
            assert_eq!(full - lean, 3 * n * n - 2 * n, "n={n}");
        }
    }

    #[test]
    fn matmul_graph_counts() {
        let n = 4;
        let g = matmul_graph(n);
        g.validate().unwrap();
        assert_eq!(g.compute_node_count(), n * n * n);
    }

    #[test]
    fn lu_graph_counts_are_trapezoidal() {
        let n = 5;
        let g = lu_graph(n);
        g.validate().unwrap();
        // Σ_{k=0}^{n-2} (n-k-1) divs + (n-k-1)^2 updates
        let expected: usize = (1..n).map(|r| r + r * r).sum();
        assert_eq!(g.compute_node_count(), expected);
    }

    #[test]
    fn faddeev_graph_validates() {
        let g = faddeev_graph(3);
        g.validate().unwrap();
        // Levels eliminate pivots 0..n of a 2n-wide matrix.
        let m = 6usize;
        let expected: usize = (0..3)
            .map(|k| (m - k - 1) + (m - k - 1) * (m - k - 1))
            .sum();
        assert_eq!(g.compute_node_count(), expected);
    }

    #[test]
    fn outputs_registered_for_all_elements() {
        let g = closure_lean(5);
        for i in 0..5 {
            for j in 0..5 {
                assert!(g.output(i, j).is_some(), "({i},{j})");
            }
        }
    }
}
