//! Functional evaluation of dependence graphs over a semiring.
//!
//! Evaluation is the semantic ground truth for the transformation passes:
//! a pass is correct iff the evaluated output matrix is unchanged. `Fuse`
//! and `Delay` nodes also *forward* their `P`/`Q`/`X` operands on the
//! matching output lanes, which is what lets pipelined (broadcast-free)
//! graphs evaluate with the same machinery.

use crate::graph::DependenceGraph;
use crate::ids::{OpKind, Port};
use systolic_semiring::{DenseMatrix, Semiring};

/// Evaluation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The graph contains a cycle.
    Cyclic,
    /// A node input lane was required but not driven and had no default.
    MissingInput {
        /// Offending node index.
        node: usize,
        /// Undriven lane.
        port: Port,
    },
    /// A declared output's producing lane carried no value.
    MissingOutput {
        /// Output element row.
        i: u32,
        /// Output element column.
        j: u32,
    },
    /// The provided matrix does not match the graph's problem size.
    ShapeMismatch,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Cyclic => write!(f, "dependence graph has a cycle"),
            EvalError::MissingInput { node, port } => {
                write!(f, "node n{node} lane {port:?} is not driven")
            }
            EvalError::MissingOutput { i, j } => {
                write!(f, "output element ({i},{j}) has no value")
            }
            EvalError::ShapeMismatch => write!(f, "input matrix shape mismatch"),
        }
    }
}

impl std::error::Error for EvalError {}

#[inline]
fn lane_index(p: Port) -> usize {
    match p {
        Port::X => 0,
        Port::P => 1,
        Port::Q => 2,
    }
}

/// Evaluates a transitive-closure-family graph on input matrix `a`.
///
/// Input terminals registered as `(i, j)` with `i < n` read `a[i][j]`;
/// terminals with `i ≥ n` (the matmul builder's B convention) read from `b`
/// when provided via [`eval_two_operand_graph`]. `Delay` nodes with no
/// driven lanes act as `0̸` sources.
///
/// # Errors
/// See [`EvalError`].
pub fn eval_closure_graph<S: Semiring>(
    g: &DependenceGraph,
    a: &DenseMatrix<S>,
) -> Result<DenseMatrix<S>, EvalError> {
    eval_with_inputs_mode(
        g,
        |i, j| {
            if (i as usize) < a.rows() && (j as usize) < a.cols() {
                Some(a.get(i as usize, j as usize).clone())
            } else {
                None
            }
        },
        false,
    )
}

/// Evaluates a Gaussian-elimination-family graph
/// ([`crate::builders::lu_graph`], [`crate::builders::faddeev_graph`])
/// numerically: `Div` nodes compute [`Semiring::div`], `MulSub` nodes
/// compute [`Semiring::elim`]. Only semirings with those operations (the
/// reals) can run this; path semirings panic by design.
///
/// The result is the in-place elimination state: for LU, the compact
/// `L\U` factor matrix; for Faddeev, the compound matrix after `n`
/// elimination levels, whose lower-right block is the Schur complement
/// `D + C·A⁻¹·B`.
///
/// # Errors
/// See [`EvalError`].
pub fn eval_elimination_graph<S: Semiring>(
    g: &DependenceGraph,
    a: &DenseMatrix<S>,
) -> Result<DenseMatrix<S>, EvalError> {
    if a.rows() != g.n() || a.cols() != g.n() {
        return Err(EvalError::ShapeMismatch);
    }
    eval_with_inputs_mode(g, |i, j| Some(a.get(i as usize, j as usize).clone()), true)
}

/// Evaluates a two-operand graph (e.g. [`crate::builders::matmul_graph`]):
/// input `(i, j)` with `i < n` reads `a[i][j]`, input `(n + i, j)` reads
/// `b[i][j]`.
///
/// # Errors
/// See [`EvalError`].
pub fn eval_two_operand_graph<S: Semiring>(
    g: &DependenceGraph,
    a: &DenseMatrix<S>,
    b: &DenseMatrix<S>,
) -> Result<DenseMatrix<S>, EvalError> {
    if a.rows() != g.n() || b.rows() != g.n() {
        return Err(EvalError::ShapeMismatch);
    }
    let n = g.n() as u32;
    eval_with_inputs_mode(
        g,
        |i, j| {
            if i < n {
                Some(a.get(i as usize, j as usize).clone())
            } else {
                Some(b.get((i - n) as usize, j as usize).clone())
            }
        },
        false,
    )
}

fn eval_with_inputs_mode<S: Semiring>(
    g: &DependenceGraph,
    input_value: impl Fn(u32, u32) -> Option<S::Elem>,
    numeric: bool,
) -> Result<DenseMatrix<S>, EvalError> {
    let order = g.topo_order().map_err(|_| EvalError::Cyclic)?;
    // Per node: the three output-lane values.
    let mut out: Vec<[Option<S::Elem>; 3]> = vec![[None, None, None]; g.node_count()];
    let inn = g.in_edges();

    // Resolve input terminals first.
    let mut input_of_node: Vec<Option<(u32, u32)>> = vec![None; g.node_count()];
    for i in 0..(2 * g.n()) as u32 {
        for j in 0..g.n() as u32 {
            if let Some(nd) = g.input(i, j) {
                input_of_node[nd.index()] = Some((i, j));
            }
        }
    }

    for &u in &order {
        let node = g.node(u);
        // Gather driven input lanes.
        let mut lanes: [Option<S::Elem>; 3] = [None, None, None];
        for e in &inn[u.index()] {
            let v =
                out[e.src.index()][lane_index(e.sport)]
                    .clone()
                    .ok_or(EvalError::MissingInput {
                        node: e.src.index(),
                        port: e.sport,
                    })?;
            lanes[lane_index(e.dport)] = Some(v);
        }
        let ui = u.index();
        match node.kind {
            OpKind::Input => {
                let (i, j) = input_of_node[ui].ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::X,
                })?;
                let v = input_value(i, j).ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::X,
                })?;
                out[ui][0] = Some(v);
            }
            OpKind::Fuse => {
                let x = lanes[0].clone().ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::X,
                })?;
                let p = lanes[1].clone().ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::P,
                })?;
                let q = lanes[2].clone().ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::Q,
                })?;
                out[ui][0] = Some(S::fuse(&x, &p, &q));
                out[ui][1] = Some(p);
                out[ui][2] = Some(q);
            }
            OpKind::Delay => {
                // Pass every driven lane through; an undriven Delay is a 0̸
                // source on X (the matmul accumulator seed).
                if lanes.iter().all(Option::is_none) {
                    out[ui][0] = Some(S::zero());
                } else {
                    out[ui] = lanes;
                }
            }
            // Division head of an elimination level: l = x / p.
            OpKind::Div if numeric => {
                let x = lanes[0].clone().ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::X,
                })?;
                let p = lanes[1].clone().ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::P,
                })?;
                out[ui][0] = Some(S::div(&x, &p));
                out[ui][1] = Some(p);
            }
            // Trailing update of an elimination level: x' = x - p·q.
            OpKind::MulSub if numeric => {
                let x = lanes[0].clone().ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::X,
                })?;
                let p = lanes[1].clone().ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::P,
                })?;
                let q = lanes[2].clone().ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::Q,
                })?;
                out[ui][0] = Some(S::elim(&x, &p, &q));
                out[ui][1] = Some(p);
                out[ui][2] = Some(q);
            }
            // Arithmetic kinds outside numeric mode (and rotations, which
            // need the dedicated [`eval_givens_graph`] evaluator) are
            // structural-only: encountering one during semiring evaluation
            // is a usage error surfaced as a missing output downstream. They
            // still forward operands so pass-through analyses work.
            OpKind::Div | OpKind::MulSub | OpKind::Rot | OpKind::ApplyRot => {
                out[ui] = lanes;
            }
        }
    }

    let n = g.n();
    let mut result = DenseMatrix::<S>::zeros(n, n);
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            let (nd, port) = g.output(i, j).ok_or(EvalError::MissingOutput { i, j })?;
            let v = out[nd.index()][lane_index(port)]
                .clone()
                .ok_or(EvalError::MissingOutput { i, j })?;
            result.set(i as usize, j as usize, v);
        }
    }
    Ok(result)
}

/// A dataflow value inside the Givens evaluator: either a scalar matrix
/// element or a generated rotation `(c, s)`.
#[derive(Copy, Clone, Debug)]
enum GivensLane {
    Val(f64),
    Rot { c: f64, s: f64 },
}

#[inline]
fn givens_scalar(v: Option<GivensLane>, node: usize, port: Port) -> Result<f64, EvalError> {
    match v {
        Some(GivensLane::Val(x)) => Ok(x),
        _ => Err(EvalError::MissingInput { node, port }),
    }
}

/// Evaluates a [`crate::builders::givens_graph`] numerically over the
/// reals. A `Rot` node with leading elements `(x, p)` produces
/// `r = hypot(x, p)` on its `P` lane (the new diagonal element), and the
/// rotation `(c, s) = (x/r, p/r)` on its `X` lane — which doubles as the
/// annihilated element (read back as `0.0` at the outputs). `ApplyRot`
/// rotates a column pair: `X' = c·x + s·p`, `P' = -s·x + c·p`.
///
/// # Errors
/// See [`EvalError`]; a lane carrying a rotation where a scalar is needed
/// (or vice versa) is reported as [`EvalError::MissingInput`].
pub fn eval_givens_graph(
    g: &DependenceGraph,
    a: &DenseMatrix<systolic_semiring::Real>,
) -> Result<DenseMatrix<systolic_semiring::Real>, EvalError> {
    if a.rows() != g.n() || a.cols() != g.n() {
        return Err(EvalError::ShapeMismatch);
    }
    let order = g.topo_order().map_err(|_| EvalError::Cyclic)?;
    let mut out: Vec<[Option<GivensLane>; 3]> = vec![[None, None, None]; g.node_count()];
    let inn = g.in_edges();

    let mut input_of_node: Vec<Option<(u32, u32)>> = vec![None; g.node_count()];
    for i in 0..g.n() as u32 {
        for j in 0..g.n() as u32 {
            if let Some(nd) = g.input(i, j) {
                input_of_node[nd.index()] = Some((i, j));
            }
        }
    }

    for &u in &order {
        let node = g.node(u);
        let mut lanes: [Option<GivensLane>; 3] = [None, None, None];
        for e in &inn[u.index()] {
            let v = out[e.src.index()][lane_index(e.sport)].ok_or(EvalError::MissingInput {
                node: e.src.index(),
                port: e.sport,
            })?;
            lanes[lane_index(e.dport)] = Some(v);
        }
        let ui = u.index();
        match node.kind {
            OpKind::Input => {
                let (i, j) = input_of_node[ui].ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::X,
                })?;
                out[ui][0] = Some(GivensLane::Val(*a.get(i as usize, j as usize)));
            }
            OpKind::Delay => {
                if lanes.iter().all(Option::is_none) {
                    out[ui][0] = Some(GivensLane::Val(0.0));
                } else {
                    out[ui] = lanes;
                }
            }
            OpKind::Rot => {
                let x = givens_scalar(lanes[0], ui, Port::X)?;
                let p = givens_scalar(lanes[1], ui, Port::P)?;
                let r = x.hypot(p);
                let (c, s) = if r == 0.0 { (1.0, 0.0) } else { (x / r, p / r) };
                out[ui][0] = Some(GivensLane::Rot { c, s });
                out[ui][1] = Some(GivensLane::Val(r));
            }
            OpKind::ApplyRot => {
                let x = givens_scalar(lanes[0], ui, Port::X)?;
                let p = givens_scalar(lanes[1], ui, Port::P)?;
                let (c, s) = match lanes[2] {
                    Some(GivensLane::Rot { c, s }) => (c, s),
                    _ => {
                        return Err(EvalError::MissingInput {
                            node: ui,
                            port: Port::Q,
                        })
                    }
                };
                out[ui][0] = Some(GivensLane::Val(c * x + s * p));
                out[ui][1] = Some(GivensLane::Val(-s * x + c * p));
            }
            // Non-Givens kinds just forward, as in the structural evaluator.
            OpKind::Fuse | OpKind::Div | OpKind::MulSub => {
                out[ui] = lanes;
            }
        }
    }

    let n = g.n();
    let mut result = DenseMatrix::<systolic_semiring::Real>::zeros(n, n);
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            let (nd, port) = g.output(i, j).ok_or(EvalError::MissingOutput { i, j })?;
            let v = match out[nd.index()][lane_index(port)] {
                Some(GivensLane::Val(v)) => v,
                // An output that reads a rotation lane is the annihilated
                // sub-diagonal element: exactly zero by construction.
                Some(GivensLane::Rot { .. }) => 0.0,
                None => return Err(EvalError::MissingOutput { i, j }),
            };
            result.set(i as usize, j as usize, v);
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{
        closure_full, closure_lean, faddeev_graph, givens_graph, lu_graph, matmul_graph,
    };
    use systolic_semiring::{matmul, reflexive, warshall, Bool, MinPlus, Real};

    fn bool_adj(n: usize, edges: &[(usize, usize)]) -> DenseMatrix<Bool> {
        let mut m = DenseMatrix::<Bool>::zeros(n, n);
        for &(i, j) in edges {
            m.set(i, j, true);
        }
        m
    }

    #[test]
    fn full_graph_computes_warshall_bool() {
        let a = bool_adj(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let want = warshall(&a);
        // The graph expects the reflexive matrix as X⁰ (paper convention).
        let got = eval_closure_graph::<Bool>(&closure_full(4), &reflexive(&a)).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn lean_graph_matches_full_graph() {
        let a = bool_adj(5, &[(0, 2), (2, 4), (4, 1), (1, 3)]);
        let ar = reflexive(&a);
        let full = eval_closure_graph::<Bool>(&closure_full(5), &ar).unwrap();
        let lean = eval_closure_graph::<Bool>(&closure_lean(5), &ar).unwrap();
        assert_eq!(full, lean);
        assert_eq!(full, warshall(&a));
    }

    #[test]
    fn graphs_work_over_minplus() {
        let mut a = DenseMatrix::<MinPlus>::zeros(4, 4);
        a.set(0, 1, 3);
        a.set(1, 2, 4);
        a.set(2, 3, 1);
        a.set(0, 3, 99);
        let want = warshall(&a);
        let got = eval_closure_graph::<MinPlus>(&closure_lean(4), &reflexive(&a)).unwrap();
        assert_eq!(got, want);
        assert_eq!(*got.get(0, 3), 8);
    }

    #[test]
    fn matmul_graph_evaluates_product() {
        use systolic_semiring::Counting;
        let n = 3;
        let a = DenseMatrix::<Counting>::from_fn(n, n, |i, j| ((i + j) % 3) as u64);
        let b = DenseMatrix::<Counting>::from_fn(n, n, |i, j| ((2 * i + j) % 4) as u64);
        let want = matmul(&a, &b);
        let got = eval_two_operand_graph::<Counting>(&matmul_graph(n), &a, &b).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn shape_mismatch_detected() {
        let a = DenseMatrix::<Bool>::zeros(3, 3);
        let b = DenseMatrix::<Bool>::zeros(3, 3);
        let err = eval_two_operand_graph::<Bool>(&matmul_graph(4), &a, &b).unwrap_err();
        assert_eq!(err, EvalError::ShapeMismatch);
    }

    /// Deterministic well-conditioned test matrix (diagonally dominant, so
    /// elimination without pivoting is stable).
    fn real_test_matrix(n: usize, seed: u64) -> DenseMatrix<Real> {
        DenseMatrix::<Real>::from_fn(n, n, |i, j| {
            let h = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((i * 131 + j * 17) as u64);
            let frac = (h % 1000) as f64 / 1000.0;
            if i == j {
                (n as f64) + 1.0 + frac
            } else {
                frac - 0.5
            }
        })
    }

    /// Straight-line in-place LU without pivoting: the reference every
    /// simulated elimination pipeline must match bit-for-bit.
    fn lu_reference(a: &DenseMatrix<Real>, levels: usize) -> DenseMatrix<Real> {
        let n = a.rows();
        let mut x = a.clone();
        for k in 0..levels {
            for i in k + 1..n {
                let l = x.get(i, k) / x.get(k, k);
                x.set(i, k, l);
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let v = x.get(i, j) - x.get(i, k) * x.get(k, j);
                    x.set(i, j, v);
                }
            }
        }
        x
    }

    #[test]
    fn lu_graph_matches_straight_line_reference_exactly() {
        for n in [2usize, 3, 5, 7] {
            let a = real_test_matrix(n, n as u64);
            let got = eval_elimination_graph::<Real>(&lu_graph(n), &a).unwrap();
            let want = lu_reference(&a, n - 1);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(got.get(i, j), want.get(i, j), "n={n} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn lu_factors_reproduce_the_input_matrix() {
        let n = 6;
        let a = real_test_matrix(n, 9);
        let f = eval_elimination_graph::<Real>(&lu_graph(n), &a).unwrap();
        // Expand L·U from the compact factor matrix (L unit-lower, U upper)
        // and compare to A.
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { *f.get(i, k) };
                    v += l * f.get(k, j);
                }
                assert!(
                    (v - a.get(i, j)).abs() < 1e-9,
                    "L·U mismatch at ({i},{j}): {v} vs {}",
                    a.get(i, j)
                );
            }
        }
    }

    /// Builds the Faddeev compound matrix `[[A, B], [-C, D]]`.
    fn faddeev_compound(
        a: &DenseMatrix<Real>,
        b: &DenseMatrix<Real>,
        c: &DenseMatrix<Real>,
        d: &DenseMatrix<Real>,
    ) -> DenseMatrix<Real> {
        let n = a.rows();
        DenseMatrix::<Real>::from_fn(2 * n, 2 * n, |i, j| match (i < n, j < n) {
            (true, true) => *a.get(i, j),
            (true, false) => *b.get(i, j - n),
            (false, true) => -*c.get(i - n, j),
            (false, false) => *d.get(i - n, j - n),
        })
    }

    #[test]
    fn faddeev_graph_matches_straight_line_reference_exactly() {
        let n = 3;
        let a = real_test_matrix(n, 1);
        let b = real_test_matrix(n, 2);
        let c = real_test_matrix(n, 3);
        let d = real_test_matrix(n, 4);
        let compound = faddeev_compound(&a, &b, &c, &d);
        let got = eval_elimination_graph::<Real>(&faddeev_graph(n), &compound).unwrap();
        let want = lu_reference(&compound, n); // only the first n pivots
        for i in 0..2 * n {
            for j in 0..2 * n {
                assert_eq!(got.get(i, j), want.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn faddeev_lower_right_block_is_the_schur_complement() {
        // With A = I the Schur complement D + C·A⁻¹·B is exactly D + C·B.
        let n = 3;
        let a = DenseMatrix::<Real>::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = real_test_matrix(n, 11);
        let c = real_test_matrix(n, 12);
        let d = real_test_matrix(n, 13);
        let compound = faddeev_compound(&a, &b, &c, &d);
        let got = eval_elimination_graph::<Real>(&faddeev_graph(n), &compound).unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut want = *d.get(i, j);
                for k in 0..n {
                    want += c.get(i, k) * b.get(k, j);
                }
                let v = *got.get(n + i, n + j);
                assert!(
                    (v - want).abs() < 1e-12,
                    "Schur mismatch at ({i},{j}): {v} vs {want}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not support Gaussian-elimination")]
    fn path_semirings_cannot_run_elimination_graphs() {
        let g = lu_graph(3);
        let a = DenseMatrix::<Bool>::from_fn(3, 3, |_, _| true);
        let _ = eval_elimination_graph::<Bool>(&g, &a);
    }

    /// Straight-line Givens triangularization, mirroring the graph's wave
    /// order exactly.
    fn givens_reference(a: &DenseMatrix<Real>) -> DenseMatrix<Real> {
        let n = a.rows();
        let mut x = a.clone();
        for k in 0..n - 1 {
            for i in k + 1..n {
                let (xkk, xik) = (*x.get(k, k), *x.get(i, k));
                let r = xkk.hypot(xik);
                let (c, s) = if r == 0.0 {
                    (1.0, 0.0)
                } else {
                    (xkk / r, xik / r)
                };
                for j in k + 1..n {
                    let (xkj, xij) = (*x.get(k, j), *x.get(i, j));
                    x.set(k, j, c * xkj + s * xij);
                    x.set(i, j, -s * xkj + c * xij);
                }
                x.set(k, k, r);
                x.set(i, k, 0.0);
            }
        }
        x
    }

    #[test]
    fn givens_graph_matches_straight_line_reference_exactly() {
        for n in [2usize, 3, 5] {
            let a = real_test_matrix(n, 100 + n as u64);
            let got = eval_givens_graph(&givens_graph(n), &a).unwrap();
            let want = givens_reference(&a);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(got.get(i, j), want.get(i, j), "n={n} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn givens_result_is_upper_triangular_with_preserved_norms() {
        let n = 5;
        let a = real_test_matrix(n, 77);
        let r = eval_givens_graph(&givens_graph(n), &a).unwrap();
        for i in 0..n {
            for j in 0..i {
                assert_eq!(*r.get(i, j), 0.0, "({i},{j}) not annihilated");
            }
        }
        // Orthogonal transformations preserve the Frobenius norm.
        let fro = |m: &DenseMatrix<Real>| -> f64 {
            let mut s = 0.0;
            for i in 0..n {
                for j in 0..n {
                    s += m.get(i, j) * m.get(i, j);
                }
            }
            s.sqrt()
        };
        assert!((fro(&a) - fro(&r)).abs() < 1e-9);
    }
}
