//! Functional evaluation of dependence graphs over a semiring.
//!
//! Evaluation is the semantic ground truth for the transformation passes:
//! a pass is correct iff the evaluated output matrix is unchanged. `Fuse`
//! and `Delay` nodes also *forward* their `P`/`Q`/`X` operands on the
//! matching output lanes, which is what lets pipelined (broadcast-free)
//! graphs evaluate with the same machinery.

use crate::graph::DependenceGraph;
use crate::ids::{OpKind, Port};
use systolic_semiring::{DenseMatrix, Semiring};

/// Evaluation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The graph contains a cycle.
    Cyclic,
    /// A node input lane was required but not driven and had no default.
    MissingInput {
        /// Offending node index.
        node: usize,
        /// Undriven lane.
        port: Port,
    },
    /// A declared output's producing lane carried no value.
    MissingOutput {
        /// Output element row.
        i: u32,
        /// Output element column.
        j: u32,
    },
    /// The provided matrix does not match the graph's problem size.
    ShapeMismatch,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Cyclic => write!(f, "dependence graph has a cycle"),
            EvalError::MissingInput { node, port } => {
                write!(f, "node n{node} lane {port:?} is not driven")
            }
            EvalError::MissingOutput { i, j } => {
                write!(f, "output element ({i},{j}) has no value")
            }
            EvalError::ShapeMismatch => write!(f, "input matrix shape mismatch"),
        }
    }
}

impl std::error::Error for EvalError {}

#[inline]
fn lane_index(p: Port) -> usize {
    match p {
        Port::X => 0,
        Port::P => 1,
        Port::Q => 2,
    }
}

/// Evaluates a transitive-closure-family graph on input matrix `a`.
///
/// Input terminals registered as `(i, j)` with `i < n` read `a[i][j]`;
/// terminals with `i ≥ n` (the matmul builder's B convention) read from `b`
/// when provided via [`eval_two_operand_graph`]. `Delay` nodes with no
/// driven lanes act as `0̸` sources.
///
/// # Errors
/// See [`EvalError`].
pub fn eval_closure_graph<S: Semiring>(
    g: &DependenceGraph,
    a: &DenseMatrix<S>,
) -> Result<DenseMatrix<S>, EvalError> {
    eval_with_inputs(g, |i, j| {
        if (i as usize) < a.rows() && (j as usize) < a.cols() {
            Some(a.get(i as usize, j as usize).clone())
        } else {
            None
        }
    })
}

/// Evaluates a two-operand graph (e.g. [`crate::builders::matmul_graph`]):
/// input `(i, j)` with `i < n` reads `a[i][j]`, input `(n + i, j)` reads
/// `b[i][j]`.
///
/// # Errors
/// See [`EvalError`].
pub fn eval_two_operand_graph<S: Semiring>(
    g: &DependenceGraph,
    a: &DenseMatrix<S>,
    b: &DenseMatrix<S>,
) -> Result<DenseMatrix<S>, EvalError> {
    if a.rows() != g.n() || b.rows() != g.n() {
        return Err(EvalError::ShapeMismatch);
    }
    let n = g.n() as u32;
    eval_with_inputs(g, |i, j| {
        if i < n {
            Some(a.get(i as usize, j as usize).clone())
        } else {
            Some(b.get((i - n) as usize, j as usize).clone())
        }
    })
}

fn eval_with_inputs<S: Semiring>(
    g: &DependenceGraph,
    input_value: impl Fn(u32, u32) -> Option<S::Elem>,
) -> Result<DenseMatrix<S>, EvalError> {
    let order = g.topo_order().map_err(|_| EvalError::Cyclic)?;
    // Per node: the three output-lane values.
    let mut out: Vec<[Option<S::Elem>; 3]> = vec![[None, None, None]; g.node_count()];
    let inn = g.in_edges();

    // Resolve input terminals first.
    let mut input_of_node: Vec<Option<(u32, u32)>> = vec![None; g.node_count()];
    for i in 0..(2 * g.n()) as u32 {
        for j in 0..g.n() as u32 {
            if let Some(nd) = g.input(i, j) {
                input_of_node[nd.index()] = Some((i, j));
            }
        }
    }

    for &u in &order {
        let node = g.node(u);
        // Gather driven input lanes.
        let mut lanes: [Option<S::Elem>; 3] = [None, None, None];
        for e in &inn[u.index()] {
            let v =
                out[e.src.index()][lane_index(e.sport)]
                    .clone()
                    .ok_or(EvalError::MissingInput {
                        node: e.src.index(),
                        port: e.sport,
                    })?;
            lanes[lane_index(e.dport)] = Some(v);
        }
        let ui = u.index();
        match node.kind {
            OpKind::Input => {
                let (i, j) = input_of_node[ui].ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::X,
                })?;
                let v = input_value(i, j).ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::X,
                })?;
                out[ui][0] = Some(v);
            }
            OpKind::Fuse => {
                let x = lanes[0].clone().ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::X,
                })?;
                let p = lanes[1].clone().ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::P,
                })?;
                let q = lanes[2].clone().ok_or(EvalError::MissingInput {
                    node: ui,
                    port: Port::Q,
                })?;
                out[ui][0] = Some(S::fuse(&x, &p, &q));
                out[ui][1] = Some(p);
                out[ui][2] = Some(q);
            }
            OpKind::Delay => {
                // Pass every driven lane through; an undriven Delay is a 0̸
                // source on X (the matmul accumulator seed).
                if lanes.iter().all(Option::is_none) {
                    out[ui][0] = Some(S::zero());
                } else {
                    out[ui] = lanes;
                }
            }
            // Arithmetic kinds (LU/Faddeev/Givens) are structural-only in
            // this evaluator; encountering one during semiring evaluation is
            // a usage error surfaced as a missing output downstream. They
            // still forward operands so pass-through analyses work.
            OpKind::Div | OpKind::MulSub | OpKind::Rot | OpKind::ApplyRot => {
                out[ui] = lanes;
            }
        }
    }

    let n = g.n();
    let mut result = DenseMatrix::<S>::zeros(n, n);
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            let (nd, port) = g.output(i, j).ok_or(EvalError::MissingOutput { i, j })?;
            let v = out[nd.index()][lane_index(port)]
                .clone()
                .ok_or(EvalError::MissingOutput { i, j })?;
            result.set(i as usize, j as usize, v);
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{closure_full, closure_lean, matmul_graph};
    use systolic_semiring::{matmul, reflexive, warshall, Bool, MinPlus};

    fn bool_adj(n: usize, edges: &[(usize, usize)]) -> DenseMatrix<Bool> {
        let mut m = DenseMatrix::<Bool>::zeros(n, n);
        for &(i, j) in edges {
            m.set(i, j, true);
        }
        m
    }

    #[test]
    fn full_graph_computes_warshall_bool() {
        let a = bool_adj(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let want = warshall(&a);
        // The graph expects the reflexive matrix as X⁰ (paper convention).
        let got = eval_closure_graph::<Bool>(&closure_full(4), &reflexive(&a)).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn lean_graph_matches_full_graph() {
        let a = bool_adj(5, &[(0, 2), (2, 4), (4, 1), (1, 3)]);
        let ar = reflexive(&a);
        let full = eval_closure_graph::<Bool>(&closure_full(5), &ar).unwrap();
        let lean = eval_closure_graph::<Bool>(&closure_lean(5), &ar).unwrap();
        assert_eq!(full, lean);
        assert_eq!(full, warshall(&a));
    }

    #[test]
    fn graphs_work_over_minplus() {
        let mut a = DenseMatrix::<MinPlus>::zeros(4, 4);
        a.set(0, 1, 3);
        a.set(1, 2, 4);
        a.set(2, 3, 1);
        a.set(0, 3, 99);
        let want = warshall(&a);
        let got = eval_closure_graph::<MinPlus>(&closure_lean(4), &reflexive(&a)).unwrap();
        assert_eq!(got, want);
        assert_eq!(*got.get(0, 3), 8);
    }

    #[test]
    fn matmul_graph_evaluates_product() {
        use systolic_semiring::Counting;
        let n = 3;
        let a = DenseMatrix::<Counting>::from_fn(n, n, |i, j| ((i + j) % 3) as u64);
        let b = DenseMatrix::<Counting>::from_fn(n, n, |i, j| ((2 * i + j) % 4) as u64);
        let want = matmul(&a, &b);
        let got = eval_two_operand_graph::<Counting>(&matmul_graph(n), &a, &b).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn shape_mismatch_detected() {
        let a = DenseMatrix::<Bool>::zeros(3, 3);
        let b = DenseMatrix::<Bool>::zeros(3, 3);
        let err = eval_two_operand_graph::<Bool>(&matmul_graph(4), &a, &b).unwrap_err();
        assert_eq!(err, EvalError::ShapeMismatch);
    }
}
