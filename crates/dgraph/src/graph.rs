//! The dependence-graph container.

use crate::ids::{Coord, NodeId, OpKind, Port, Pos};
use std::collections::HashMap;

/// One operation node.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// Operation kind.
    pub kind: OpKind,
    /// Algorithm coordinates `(level, row, col)`.
    pub coord: Coord,
    /// Drawing-plane position (assigned by builders / transformation passes).
    pub pos: Pos,
    /// Computation time in cycles (the paper assumes 1 for transitive
    /// closure; the §4.3 graphs have varying costs).
    pub cost: u32,
}

/// A directed, port-typed edge `src.sport → dst.dport`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Producing node.
    pub src: NodeId,
    /// Output lane of the producer.
    pub sport: Port,
    /// Consuming node.
    pub dst: NodeId,
    /// Input lane of the consumer.
    pub dport: Port,
}

/// A fully-parallel dependence graph: DAG of operation nodes with typed
/// ports, plus designations of which `(i, j)` element each external input
/// provides and which node/port holds each final output element.
#[derive(Clone, Debug, Default)]
pub struct DependenceGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// `(i, j) → input node` for the problem's input matrix.
    inputs: HashMap<(u32, u32), NodeId>,
    /// `(i, j) → (node, port)` holding the final value of element `(i, j)`.
    outputs: HashMap<(u32, u32), (NodeId, Port)>,
    /// Problem size the graph was built for.
    n: usize,
}

impl DependenceGraph {
    /// Creates an empty graph for problem size `n`.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            ..Default::default()
        }
    }

    /// Problem size (`n` of the `n × n` matrix).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, kind: OpKind, coord: Coord, pos: Pos, cost: u32) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(Node {
            kind,
            coord,
            pos,
            cost,
        });
        id
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, src: NodeId, sport: Port, dst: NodeId, dport: Port) {
        debug_assert!(src.index() < self.nodes.len() && dst.index() < self.nodes.len());
        self.edges.push(Edge {
            src,
            sport,
            dst,
            dport,
        });
    }

    /// Registers an input terminal for matrix element `(i, j)`.
    pub fn set_input(&mut self, i: u32, j: u32, node: NodeId) {
        self.inputs.insert((i, j), node);
    }

    /// Registers the output location of matrix element `(i, j)`.
    pub fn set_output(&mut self, i: u32, j: u32, node: NodeId, port: Port) {
        self.outputs.insert((i, j), (node, port));
    }

    /// Input terminal for element `(i, j)`, if any.
    pub fn input(&self, i: u32, j: u32) -> Option<NodeId> {
        self.inputs.get(&(i, j)).copied()
    }

    /// Output location for element `(i, j)`, if any.
    pub fn output(&self, i: u32, j: u32) -> Option<(NodeId, Port)> {
        self.outputs.get(&(i, j)).copied()
    }

    /// All nodes.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Node by id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node by id.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes performing useful computation (excludes inputs and
    /// delays) — the `N` of the paper's utilization formula.
    pub fn compute_node_count(&self) -> usize {
        self.nodes.iter().filter(|nd| nd.kind.is_compute()).count()
    }

    /// Total computation time over all compute nodes: `Σ nᵢ tᵢ` in §4.1.
    pub fn total_compute_time(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|nd| nd.kind.is_compute())
            .map(|nd| u64::from(nd.cost))
            .sum()
    }

    /// Out-adjacency: edges grouped by source node (index = node id).
    pub fn out_edges(&self) -> Vec<Vec<Edge>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            adj[e.src.index()].push(*e);
        }
        adj
    }

    /// In-adjacency: edges grouped by destination node.
    pub fn in_edges(&self) -> Vec<Vec<Edge>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            adj[e.dst.index()].push(*e);
        }
        adj
    }

    /// Topological order of node ids.
    ///
    /// # Errors
    /// Returns `Err(offending_nodes)` if the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, Vec<NodeId>> {
        let mut indeg = vec![0usize; self.nodes.len()];
        for e in &self.edges {
            indeg[e.dst.index()] += 1;
        }
        let adj = self.out_edges();
        let mut queue: Vec<NodeId> = indeg
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == 0)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            for e in &adj[u.index()] {
                indeg[e.dst.index()] -= 1;
                if indeg[e.dst.index()] == 0 {
                    queue.push(e.dst);
                }
            }
        }
        if order.len() == self.nodes.len() {
            Ok(order)
        } else {
            let stuck = indeg
                .iter()
                .enumerate()
                .filter(|(_, d)| **d > 0)
                .map(|(i, _)| NodeId(i as u32))
                .collect();
            Err(stuck)
        }
    }

    /// Structural validation: edges in range, DAG, every `Fuse` node has its
    /// three input lanes driven exactly once, every declared output exists.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.edges {
            if e.src.index() >= self.nodes.len() || e.dst.index() >= self.nodes.len() {
                return Err(format!("edge {:?} references missing node", e));
            }
        }
        // Each (dst, dport) driven at most once.
        let mut seen = std::collections::HashSet::new();
        for e in &self.edges {
            if !seen.insert((e.dst, e.dport)) {
                return Err(format!(
                    "input lane {:?}.{:?} driven by more than one edge",
                    e.dst, e.dport
                ));
            }
        }
        // Fuse nodes need X, P and Q.
        let inn = self.in_edges();
        for (idx, nd) in self.nodes.iter().enumerate() {
            if nd.kind == OpKind::Fuse {
                for lane in [Port::X, Port::P, Port::Q] {
                    if !inn[idx].iter().any(|e| e.dport == lane) {
                        return Err(format!(
                            "fuse node n{} at {:?} missing input lane {:?}",
                            idx, nd.coord, lane
                        ));
                    }
                }
            }
            if nd.kind == OpKind::Input && !inn[idx].is_empty() {
                return Err(format!("input node n{} has incoming edges", idx));
            }
        }
        if self.topo_order().is_err() {
            return Err("graph has a cycle".into());
        }
        for (&(i, j), &(node, _)) in &self.outputs {
            if node.index() >= self.nodes.len() {
                return Err(format!("output ({i},{j}) references missing node"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DependenceGraph {
        // in0 --X--> fuse <--P-- in1 ; Q from in0 as well
        let mut g = DependenceGraph::new(1);
        let i0 = g.add_node(OpKind::Input, Coord::new(0, 0, 0), Pos::new(0, 0), 0);
        let i1 = g.add_node(OpKind::Input, Coord::new(0, 0, 1), Pos::new(1, 0), 0);
        let f = g.add_node(OpKind::Fuse, Coord::new(1, 0, 0), Pos::new(0, 1), 1);
        g.add_edge(i0, Port::X, f, Port::X);
        g.add_edge(i1, Port::X, f, Port::P);
        g.add_edge(i0, Port::X, f, Port::Q);
        g.set_input(0, 0, i0);
        g.set_input(0, 1, i1);
        g.set_output(0, 0, f, Port::X);
        g
    }

    #[test]
    fn validate_accepts_wellformed() {
        tiny().validate().unwrap();
    }

    #[test]
    fn validate_rejects_missing_lane() {
        let mut g = DependenceGraph::new(1);
        let i0 = g.add_node(OpKind::Input, Coord::new(0, 0, 0), Pos::new(0, 0), 0);
        let f = g.add_node(OpKind::Fuse, Coord::new(1, 0, 0), Pos::new(0, 1), 1);
        g.add_edge(i0, Port::X, f, Port::X);
        let err = g.validate().unwrap_err();
        assert!(err.contains("missing input lane"), "{err}");
    }

    #[test]
    fn validate_rejects_double_drive() {
        let mut g = tiny();
        let i0 = g.input(0, 0).unwrap();
        let f = g.output(0, 0).unwrap().0;
        g.add_edge(i0, Port::X, f, Port::X);
        let err = g.validate().unwrap_err();
        assert!(err.contains("more than one edge"), "{err}");
    }

    #[test]
    fn topo_order_detects_cycle() {
        let mut g = DependenceGraph::new(1);
        let a = g.add_node(OpKind::Delay, Coord::new(1, 0, 0), Pos::default(), 1);
        let b = g.add_node(OpKind::Delay, Coord::new(1, 0, 1), Pos::default(), 1);
        g.add_edge(a, Port::X, b, Port::X);
        g.add_edge(b, Port::X, a, Port::X);
        assert!(g.topo_order().is_err());
        assert!(g.validate().is_err());
    }

    #[test]
    fn counts() {
        let g = tiny();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.compute_node_count(), 1);
        assert_eq!(g.total_compute_time(), 1);
    }
}
