//! Fully-parallel dependence graphs: the algorithm description the paper's
//! methodology starts from (§1–§2).
//!
//! A dependence graph here is a DAG whose nodes are scalar operations tagged
//! with *algorithm coordinates* `(level k, row i, col j)` and a *layout
//! position* used by the transformation passes, and whose edges carry typed
//! ports (`X` value-in, `P` pivot-column operand, `Q` pivot-row operand).
//!
//! Provided builders:
//! * [`builders::closure_full`] — the fully-parallel transitive-closure graph
//!   of Fig. 10 (all `n³` nodes),
//! * [`builders::closure_lean`] — with superfluous nodes removed (Fig. 11),
//! * [`builders::matmul_graph`] — the `C = A ⊗ B` cube graph (substrate for
//!   the Núñez–Torralba baseline),
//! * [`builders::lu_graph`] / [`builders::faddeev_graph`] — the §4.3 examples
//!   with *varying* node computation times.
//!
//! Analyses ([`analysis`]) quantify exactly the properties the paper's
//! transformations remove: broadcast fan-out, bi-directional flow, irregular
//! communication patterns; [`eval`] executes a graph over any semiring to
//! prove transformations preserve semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builders;
pub mod dot;
pub mod eval;
pub mod graph;
pub mod ids;

pub use analysis::{
    broadcast_census, direction_census, level_histogram, longest_path, superfluous_count,
    BroadcastCensus, DirectionCensus,
};
pub use builders::{
    closure_full, closure_lean, faddeev_graph, givens_graph, lu_graph, matmul_graph,
};
pub use dot::{to_dot, DotOptions};
pub use eval::{
    eval_closure_graph, eval_elimination_graph, eval_givens_graph, eval_two_operand_graph,
    EvalError,
};
pub use graph::{DependenceGraph, Edge, Node};
pub use ids::{Coord, NodeId, OpKind, Port, Pos};
