//! Graph analyses quantifying the properties the paper's transformations
//! target: broadcasting (Fig. 4a / Fig. 12), bi-directional flow (Fig. 13),
//! and irregular communication patterns (Fig. 15).

use crate::graph::DependenceGraph;
use crate::ids::{NodeId, OpKind, Port};
use std::collections::HashMap;

/// Fan-out statistics per output lane — broadcasting shows up as lanes with
/// fan-out `Θ(n)`.
#[derive(Clone, Debug, PartialEq)]
pub struct BroadcastCensus {
    /// Largest fan-out of any `(node, output-lane)` pair.
    pub max_fanout: usize,
    /// Number of lanes with fan-out ≥ 2 (broadcast sources).
    pub broadcast_sources: usize,
    /// Number of driven lanes in total.
    pub driven_lanes: usize,
    /// Histogram `fanout → lane count`.
    pub histogram: HashMap<usize, usize>,
}

/// Counts edges by the sign of their drawing-plane displacement. The paper's
/// "bi-directional data flow" is the simultaneous presence of `leftward` and
/// `rightward` (or `upward` and `downward`) edges among non-`X`-lane
/// communications of a level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirectionCensus {
    /// Intra-level edges with `Δx < 0`.
    pub intra_leftward: usize,
    /// Intra-level edges with `Δx > 0`.
    pub intra_rightward: usize,
    /// Intra-level edges with `Δy < 0`.
    pub intra_upward: usize,
    /// Intra-level edges with `Δy > 0`.
    pub intra_downward: usize,
    /// Distinct `(Δx, Δy, src-lane, dst-lane)` patterns over intra-level
    /// edges (the pipelined chains).
    pub intra_patterns: usize,
    /// Distinct `(Δx, Δy, src-lane, dst-lane)` patterns over inter-level
    /// edges (strip-to-strip communication; small constant = regular).
    pub inter_patterns: usize,
    /// Largest horizontal displacement magnitude of any inter-level edge —
    /// `Θ(n)` when strips communicate through wrap-around (the Fig. 15
    /// irregularity), `O(1)` after delay-node regularization.
    pub inter_max_abs_dx: i64,
}

impl DirectionCensus {
    /// True when intra-level horizontal flow is uni-directional.
    pub fn unidirectional_x(&self) -> bool {
        self.intra_leftward == 0 || self.intra_rightward == 0
    }
    /// True when intra-level vertical flow is uni-directional.
    pub fn unidirectional_y(&self) -> bool {
        self.intra_upward == 0 || self.intra_downward == 0
    }
}

/// Computes the fan-out census over every `(node, output-lane)`.
pub fn broadcast_census(g: &DependenceGraph) -> BroadcastCensus {
    let mut fanout: HashMap<(NodeId, Port), usize> = HashMap::new();
    for e in g.edges() {
        *fanout.entry((e.src, e.sport)).or_insert(0) += 1;
    }
    let mut histogram: HashMap<usize, usize> = HashMap::new();
    let mut max_fanout = 0;
    let mut broadcast_sources = 0;
    for &f in fanout.values() {
        *histogram.entry(f).or_insert(0) += 1;
        max_fanout = max_fanout.max(f);
        if f >= 2 {
            broadcast_sources += 1;
        }
    }
    BroadcastCensus {
        max_fanout,
        broadcast_sources,
        driven_lanes: fanout.len(),
        histogram,
    }
}

/// Computes the direction census over all edges whose endpoints are both
/// compute or delay nodes (edges from input terminals are boundary I/O, not
/// inter-cell communication).
pub fn direction_census(g: &DependenceGraph) -> DirectionCensus {
    let mut c = DirectionCensus::default();
    let mut inter = std::collections::HashSet::new();
    let mut intra = std::collections::HashSet::new();
    for e in g.edges() {
        let s = g.node(e.src);
        let d = g.node(e.dst);
        if s.kind == OpKind::Input {
            continue;
        }
        let dx = d.pos.x - s.pos.x;
        let dy = d.pos.y - s.pos.y;
        if s.coord.level == d.coord.level {
            if dx < 0 {
                c.intra_leftward += 1;
            } else if dx > 0 {
                c.intra_rightward += 1;
            }
            if dy < 0 {
                c.intra_upward += 1;
            } else if dy > 0 {
                c.intra_downward += 1;
            }
            intra.insert((dx, dy, e.sport, e.dport));
        } else {
            inter.insert((dx, dy, e.sport, e.dport));
            c.inter_max_abs_dx = c.inter_max_abs_dx.max(dx.abs());
        }
    }
    c.intra_patterns = intra.len();
    c.inter_patterns = inter.len();
    c
}

/// Longest weighted path through the graph (node costs), i.e. the minimum
/// possible delay of a fully pipelined implementation (§1: "minimum delay
/// determined by the longest path in the graph").
///
/// # Panics
/// Panics if the graph is cyclic.
pub fn longest_path(g: &DependenceGraph) -> u64 {
    let order = g.topo_order().expect("dependence graph must be acyclic");
    let mut dist = vec![0u64; g.node_count()];
    for &u in &order {
        dist[u.index()] += u64::from(g.node(u).cost);
    }
    let adj = g.out_edges();
    let mut best = 0;
    for &u in &order {
        let du = dist[u.index()];
        best = best.max(du);
        for e in &adj[u.index()] {
            let nd = du + u64::from(g.node(e.dst).cost);
            if nd > dist[e.dst.index()] {
                dist[e.dst.index()] = nd;
            }
        }
    }
    best
}

/// Number of compute nodes per level `k` (Fig. 10 has `n²` per level;
/// Fig. 11 has `(n-1)(n-2)`; LU-type graphs shrink with `k`).
pub fn level_histogram(g: &DependenceGraph) -> Vec<(u32, usize)> {
    let mut h: HashMap<u32, usize> = HashMap::new();
    for nd in g.nodes() {
        if nd.kind.is_compute() {
            *h.entry(nd.coord.level).or_insert(0) += 1;
        }
    }
    let mut v: Vec<_> = h.into_iter().collect();
    v.sort_unstable();
    v
}

/// Closed-form superfluous-node count for transitive closure of size `n`
/// (§4.2): total `n³`, superfluous `3n² - 2n`, useful `n(n-1)(n-2)`.
pub fn superfluous_count(n: usize) -> (usize, usize, usize) {
    let total = n * n * n;
    let superfluous = 3 * n * n - 2 * n;
    let useful = n * (n.saturating_sub(1)) * (n.saturating_sub(2));
    (total, superfluous, useful)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{closure_full, closure_lean, lu_graph};

    #[test]
    fn full_graph_broadcasts_order_n() {
        let n = 6;
        let c = broadcast_census(&closure_full(n));
        // A pivot-row element feeds X of its own successor plus Q of a whole
        // column (n consumers) at the next level.
        assert!(c.max_fanout >= n, "max fanout {} < n {}", c.max_fanout, n);
        assert!(c.broadcast_sources > 0);
    }

    #[test]
    fn lean_graph_still_broadcasts() {
        // Removing superfluous nodes does not remove broadcasting — that is
        // the job of the pipelining transformation (Fig. 12).
        let c = broadcast_census(&closure_lean(6));
        assert!(c.max_fanout >= 4);
    }

    #[test]
    fn superfluous_closed_form_matches_builders() {
        for n in [3usize, 4, 5, 9] {
            let (total, sup, useful) = superfluous_count(n);
            assert_eq!(total, closure_full(n).compute_node_count());
            assert_eq!(useful, closure_lean(n).compute_node_count());
            assert_eq!(total - useful, sup);
        }
    }

    #[test]
    fn level_histogram_shapes() {
        let n = 5;
        let h = level_histogram(&closure_full(n));
        assert_eq!(h.len(), n);
        assert!(h.iter().all(|&(_, c)| c == n * n));
        let h = level_histogram(&closure_lean(n));
        assert!(h.iter().all(|&(_, c)| c == (n - 1) * (n - 2)));
        let h = level_histogram(&lu_graph(n));
        // Shrinking trapezoid: (n-k)² + (n-k) … strictly decreasing.
        for w in h.windows(2) {
            assert!(w[0].1 > w[1].1);
        }
    }

    #[test]
    fn longest_path_of_full_closure_is_linear_in_n() {
        // Each level adds ≥1 to the critical path; with unit costs the
        // X-chain of any element passes through all n levels.
        for n in [3usize, 5, 8] {
            let lp = longest_path(&closure_full(n));
            assert_eq!(lp, n as u64, "n={n}");
        }
    }

    #[test]
    fn direction_census_sees_long_range_patterns_in_full_graph() {
        // Broadcast edges reach arbitrarily far within the drawing — the
        // communication complexity the transformations remove.
        let c5 = direction_census(&closure_full(5));
        let c9 = direction_census(&closure_full(9));
        assert!(c5.inter_max_abs_dx >= 3);
        assert!(c9.inter_max_abs_dx > c5.inter_max_abs_dx);
        assert!(c9.inter_patterns > c5.inter_patterns);
    }
}
