//! Identifier and tag types for dependence graphs.

use std::fmt;

/// Index of a node within its [`crate::graph::DependenceGraph`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Operation performed by a node.
///
/// `Fuse` is the transitive-closure primitive `x ⊕ (p ⊗ q)` — one node of
/// the paper's Fig. 10. The arithmetic kinds (`Div`, `MulSub`, `Rot`,
/// `ApplyRot`) appear in the §4.3 graphs (LU, Faddeev, Givens) where what
/// matters to the methodology is their *computation time*, carried in
/// [`crate::graph::Node::cost`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// External input terminal (provides one matrix element).
    Input,
    /// `XOut = X ⊕ (P ⊗ Q)`; forwards `P`/`Q` when pipelined.
    Fuse,
    /// Identity on every connected port, one time-step of delay (the
    /// regularization nodes of Fig. 15c).
    Delay,
    /// Reciprocal/division node (LU pivot column, Faddeev elimination).
    Div,
    /// Multiply-subtract update node (LU/Faddeev interior).
    MulSub,
    /// Rotation-generation node (Givens triangularization).
    Rot,
    /// Rotation-application node (Givens triangularization).
    ApplyRot,
}

impl OpKind {
    /// True for nodes that perform useful algorithm work (as opposed to
    /// inputs and inserted delays) — the numerator of the paper's
    /// utilization measure.
    #[inline]
    pub fn is_compute(self) -> bool {
        !matches!(self, OpKind::Input | OpKind::Delay)
    }
}

/// Typed data port of a node.
///
/// For `Fuse`: `X` is the running value `x_ij`, `P` the pivot-column operand
/// `x_ik`, `Q` the pivot-row operand `x_kj`. Transformed graphs reuse `P`/`Q`
/// as the pipelined pass-through lanes. Other op kinds use `X`/`P`/`Q` as
/// their first/second/third operand lanes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Port {
    /// Value lane.
    X,
    /// Pivot-column lane.
    P,
    /// Pivot-row lane.
    Q,
}

/// All ports, in lane order.
pub const PORTS: [Port; 3] = [Port::X, Port::P, Port::Q];

/// Algorithm coordinates of a node: iteration level `k` and matrix indices
/// `(i, j)`. Input terminals use `level = 0`; level `k ≥ 1` computes `X^k`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Outer-loop level (`k` of Warshall), with 0 = inputs.
    pub level: u32,
    /// Matrix row index `i`.
    pub row: u32,
    /// Matrix column index `j`.
    pub col: u32,
}

impl Coord {
    /// Convenience constructor.
    #[inline]
    pub fn new(level: u32, row: u32, col: u32) -> Self {
        Self { level, row, col }
    }
}

/// Layout position used by the transformation passes to reason about flow
/// direction in the drawing plane: `x` grows rightward, `y` grows downward.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Pos {
    /// Horizontal drawing coordinate.
    pub x: i64,
    /// Vertical drawing coordinate.
    pub y: i64,
}

impl Pos {
    /// Convenience constructor.
    #[inline]
    pub fn new(x: i64, y: i64) -> Self {
        Self { x, y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_classification() {
        assert!(OpKind::Fuse.is_compute());
        assert!(OpKind::Div.is_compute());
        assert!(!OpKind::Input.is_compute());
        assert!(!OpKind::Delay.is_compute());
    }

    #[test]
    fn node_id_debug_format() {
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }
}
