//! Graphviz DOT export of dependence graphs — regenerating the paper's
//! figures (10–16) for arbitrary `n`.
//!
//! Nodes are placed at their layout positions (`pos` attribute, usable with
//! `neato -n`), colored by op kind, with edge lanes styled per port so the
//! pivot-row (`Q`), pivot-column (`P`) and value (`X`) flows are visually
//! distinct, as in the paper's drawings.

use crate::graph::DependenceGraph;
use crate::ids::{OpKind, Port};
use std::fmt::Write as _;

/// Rendering options.
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Scale factor from layout units to points.
    pub scale: f64,
    /// Include input terminals.
    pub show_inputs: bool,
    /// Graph title.
    pub title: String,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self {
            scale: 60.0,
            show_inputs: false,
            title: String::new(),
        }
    }
}

fn node_style(kind: OpKind) -> (&'static str, &'static str) {
    match kind {
        OpKind::Input => ("circle", "#999999"),
        OpKind::Fuse => ("box", "#4477aa"),
        OpKind::Delay => ("diamond", "#ccbb44"),
        OpKind::Div => ("ellipse", "#ee6677"),
        OpKind::MulSub => ("box", "#66ccee"),
        OpKind::Rot => ("ellipse", "#aa3377"),
        OpKind::ApplyRot => ("box", "#228833"),
    }
}

fn edge_style(port: Port) -> &'static str {
    match port {
        Port::X => "color=\"#222222\"",
        Port::P => "color=\"#ee6677\", style=dashed",
        Port::Q => "color=\"#4477aa\", style=dotted",
    }
}

/// Renders the graph as DOT text.
pub fn to_dot(g: &DependenceGraph, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph dependence_graph {{");
    if !opts.title.is_empty() {
        let _ = writeln!(out, "  label=\"{}\"; labelloc=t;", opts.title);
    }
    let _ = writeln!(
        out,
        "  node [fontsize=8, width=0.3, height=0.3, fixedsize=true];"
    );
    for (idx, nd) in g.nodes().iter().enumerate() {
        if nd.kind == OpKind::Input && !opts.show_inputs {
            continue;
        }
        let (shape, color) = node_style(nd.kind);
        let _ = writeln!(
            out,
            "  n{idx} [shape={shape}, color=\"{color}\", pos=\"{:.0},{:.0}\", label=\"{},{},{}\"];",
            nd.pos.x as f64 * opts.scale,
            -(nd.pos.y as f64) * opts.scale,
            nd.coord.level,
            nd.coord.row,
            nd.coord.col
        );
    }
    for e in g.edges() {
        let skip_src = g.node(e.src).kind == OpKind::Input && !opts.show_inputs;
        if skip_src {
            continue;
        }
        let _ = writeln!(
            out,
            "  n{} -> n{} [{}];",
            e.src.index(),
            e.dst.index(),
            edge_style(e.dport)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{closure_full, closure_lean};

    #[test]
    fn dot_contains_every_compute_node_and_parses_shape() {
        let g = closure_lean(4);
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        let boxes = dot.matches("shape=box").count();
        assert_eq!(boxes, g.compute_node_count());
    }

    #[test]
    fn inputs_are_optional() {
        let g = closure_full(3);
        let without = to_dot(&g, &DotOptions::default());
        let with = to_dot(
            &g,
            &DotOptions {
                show_inputs: true,
                ..Default::default()
            },
        );
        assert!(with.matches("shape=circle").count() == 9);
        assert!(without.matches("shape=circle").count() == 0);
        assert!(with.len() > without.len());
    }

    #[test]
    fn title_is_emitted() {
        let g = closure_lean(3);
        let dot = to_dot(
            &g,
            &DotOptions {
                title: "Fig. 11".into(),
                ..Default::default()
            },
        );
        assert!(dot.contains("label=\"Fig. 11\""));
    }
}
