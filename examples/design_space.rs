//! Design-space exploration (§4.2): for a problem size and a cell budget,
//! compare the linear and two-dimensional partitioned arrays on the
//! paper's measures — and validate the models against simulation at one
//! design point.
//!
//! ```text
//! cargo run --release --example design_space [n] [sqrt_m]
//! ```

use systolic::closure::gnp;
use systolic::metrics::{compare_grid_run, compare_linear_run, tradeoff_row};
use systolic::partition::{ClosureEngine, GridEngine, LinearEngine};
use systolic_semiring::Bool;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);
    let s: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let m = s * s;

    println!("design space for n = {n} (analytic, §4.2):\n");
    println!("|  n  |  m  | throughput | utilization | D_io | mem linear | mem grid |");
    println!("|-----|-----|-----------:|------------:|-----:|-----------:|---------:|");
    for nn in [n / 2, n, 2 * n] {
        for side in [s, 2 * s] {
            let r = tradeoff_row(nn.max(4), side);
            println!(
                "| {:>3} | {:>3} | {:>10.2e} | {:>11.4} | {:>4.2} | {:>10} | {:>8} |",
                r.n,
                r.m,
                r.throughput,
                r.utilization,
                r.io_bandwidth,
                r.linear_mem_connections,
                r.grid_mem_connections
            );
        }
    }

    println!("\nvalidating the n = {n}, m = {m} point against the simulator…\n");
    let a = gnp(n, 0.15, 42).adjacency_matrix();

    let (_, lstats) = ClosureEngine::<Bool>::closure(&LinearEngine::new(m), &a).unwrap();
    println!("linear array (m = {m}):");
    for row in compare_linear_run(n, m, &lstats, 1) {
        println!(
            "  {:<38} paper {:>10.6}  measured {:>10.6}",
            row.metric, row.paper, row.measured
        );
    }

    let (_, gstats) = ClosureEngine::<Bool>::closure(&GridEngine::new(s), &a).unwrap();
    println!("\ngrid array (√m = {s}):");
    for row in compare_grid_run(n, s, &gstats, 1) {
        println!(
            "  {:<38} paper {:>10.6}  measured {:>10.6}",
            row.metric, row.paper, row.measured
        );
    }

    println!(
        "\nconclusion (§5): same throughput, utilization and I/O bandwidth; the linear array \
         needs {} memory connections vs the grid's {} but wins on implementation simplicity, \
         boundary behaviour and fault tolerance.",
        m + 1,
        2 * s
    );
}
