//! §5's fault-tolerance argument, measured: a linear partitioned array
//! degrades gracefully under cell failures (bypass reconfiguration keeps
//! `m - f` cells productive), while a 2-D mesh without per-cell routing
//! muxes retires a whole row and column per fault.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use systolic::closure::gnp;
use systolic::partition::{
    grid_fault_capacity, linear_fault_capacity, ClosureEngine, FaultyLinearEngine, LinearEngine,
};
use systolic_semiring::{warshall, Bool};

fn main() {
    let n = 16;
    let m = 8;
    let a = gnp(n, 0.2, 99).adjacency_matrix();
    let want = warshall(&a);

    let (_, healthy) = ClosureEngine::<Bool>::closure(&LinearEngine::new(m), &a).unwrap();
    println!("healthy linear array: m = {m}, {} cycles\n", healthy.cycles);

    println!("| faults | healthy cells | cycles | slowdown | ideal m/(m-f) | result |");
    println!("|-------:|--------------:|-------:|---------:|--------------:|--------|");
    for faults in 1..=4usize {
        let fault_set: Vec<usize> = (0..faults).map(|i| 2 * i + 1).collect();
        let eng = FaultyLinearEngine::new(m, &fault_set).unwrap();
        let (got, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
        let ok = got == want;
        println!(
            "| {faults:>6} | {:>13} | {:>6} | {:>8.3} | {:>13.3} | {} |",
            eng.healthy_cells(),
            stats.cycles,
            stats.cycles as f64 / healthy.cycles as f64,
            m as f64 / (m - faults) as f64,
            if ok { "exact ✓" } else { "WRONG" }
        );
        assert!(ok);
    }

    println!("\nremaining computational capacity after worst-case faults (§5):");
    println!("| faults | linear (m = 16) | 2-D mesh (4×4) |");
    println!("|-------:|----------------:|---------------:|");
    for f in 0..=4usize {
        println!(
            "| {f:>6} | {:>15.3} | {:>14.3} |",
            linear_fault_capacity(16, f),
            grid_fault_capacity(4, f)
        );
    }
    println!(
        "\nthe linear array loses one cell per fault; the mesh loses a row and a column —\n\
         the quantitative form of the paper's §5 conclusion."
    );
}
