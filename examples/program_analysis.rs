//! Call-graph reachability — the classic software-engineering use of
//! transitive closure (dead-code detection, recursion groups, API reach).
//!
//! A synthetic call graph of a small program is closed on the Fig. 18
//! linear partitioned array; the host-side queries then answer:
//! * which functions are unreachable from `main` (dead code),
//! * which functions are mutually recursive (SCCs),
//! * the full API surface transitively reachable from each public entry.
//!
//! ```text
//! cargo run --release --example program_analysis
//! ```

use systolic::closure::{Backend, ClosureSolver, DiGraph};

const FUNCS: &[&str] = &[
    "main",          // 0
    "parse_args",    // 1
    "load_config",   // 2
    "run_server",    // 3
    "handle_conn",   // 4
    "parse_request", // 5
    "route",         // 6
    "render_json",   // 7
    "log_event",     // 8
    "old_handler",   // 9  (dead)
    "legacy_fmt",    // 10 (dead, called only by old_handler)
    "retry",         // 11 (mutually recursive with backoff)
    "backoff",       // 12
];

fn main() {
    let mut g = DiGraph::new(FUNCS.len());
    for (u, v) in [
        (0, 1),
        (0, 2),
        (0, 3),
        (3, 4),
        (4, 5),
        (4, 6),
        (6, 7),
        (4, 8),
        (9, 10),
        (9, 8),
        (3, 11),
        (11, 12),
        (12, 11), // retry ↔ backoff
        (11, 8),
    ] {
        g.add_edge(u, v);
    }

    let solver = ClosureSolver::new(Backend::Linear { cells: 4 });
    let (reach, report) = solver.transitive_closure_with_report(&g).unwrap();
    println!(
        "closed {}-function call graph in {} simulated cycles on {} cells\n",
        FUNCS.len(),
        report.stats.cycles,
        report.stats.cells
    );

    // Dead code: unreachable from main (vertex 0).
    let dead: Vec<&str> = (0..FUNCS.len())
        .filter(|&f| !reach.reachable(0, f))
        .map(|f| FUNCS[f])
        .collect();
    println!("dead code (unreachable from main): {dead:?}");
    assert_eq!(dead, ["old_handler", "legacy_fmt"]);

    // Recursion groups: non-trivial SCCs.
    let mut seen = vec![false; FUNCS.len()];
    for f in 0..FUNCS.len() {
        if seen[f] {
            continue;
        }
        let scc = reach.scc_of(f);
        for &v in &scc {
            seen[v] = true;
        }
        if scc.len() > 1 {
            let names: Vec<&str> = scc.iter().map(|&v| FUNCS[v]).collect();
            println!("mutually recursive group: {names:?}");
            assert_eq!(names, ["retry", "backoff"]);
        }
    }

    // Reach of the request handler.
    let handler_reach: Vec<&str> = reach
        .reachable_set(4)
        .into_iter()
        .map(|f| FUNCS[f])
        .collect();
    println!("handle_conn transitively calls: {handler_reach:?}");
}
