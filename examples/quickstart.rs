//! Quickstart: compute the transitive closure of a directed graph on a
//! simulated partitioned systolic array and compare every backend.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use systolic::closure::{Backend, ClosureSolver, DiGraph};

fn main() {
    // A small dependency graph: 0→1→2→3, a cycle 4↔5, and 3→4.
    let mut g = DiGraph::new(6);
    for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 4)] {
        g.add_edge(u, v);
    }

    println!("graph: {} vertices, {} edges", g.n(), g.edge_count());

    // Solve on the paper's linear partitioned array with m = 3 cells.
    let solver = ClosureSolver::new(Backend::Linear { cells: 3 });
    let (reach, report) = solver.transitive_closure_with_report(&g).unwrap();

    println!("backend: {}", report.backend);
    println!(
        "simulated {} cycles on {} cells ({} memory connections, I/O {:.3} words/cycle)",
        report.stats.cycles,
        report.stats.cells,
        report.stats.memory_connections,
        report.stats.io_bandwidth()
    );
    println!(
        "useful utilization: {:.3}",
        report.stats.useful_utilization()
    );

    println!("\nreachability from vertex 0: {:?}", reach.reachable_set(0));
    println!("strongly connected with 4: {:?}", reach.scc_of(4));
    assert!(reach.reachable(0, 5));
    assert!(!reach.reachable(5, 0));

    // Every other backend agrees.
    for backend in [
        Backend::Reference,
        Backend::BitParallel,
        Backend::FixedArray,
        Backend::FixedLinear,
        Backend::Grid { side: 2 },
        Backend::Blocked { tile: 3 },
    ] {
        let r = ClosureSolver::new(backend).transitive_closure(&g).unwrap();
        assert_eq!(r, reach, "{backend:?} disagrees");
    }
    println!("\nall 7 backends agree ✓");
}
