//! Regenerates the paper's dependence-graph figures as Graphviz DOT files
//! for an arbitrary problem size.
//!
//! ```text
//! cargo run --release --example render_figures [n] [outdir]
//! # then e.g.:  neato -n -Tsvg figures/fig12_pipelined.dot -o fig12.svg
//! ```

use systolic::dgraph::{closure_full, closure_lean, to_dot, DotOptions};
use systolic::transform::{pipelined, regular, unidirectional};

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let outdir = args.next().unwrap_or_else(|| "figures".into());
    std::fs::create_dir_all(&outdir)?;

    let figures = [
        (
            "fig10_fully_parallel",
            "Fig. 10 — fully-parallel dependence graph",
            closure_full(n),
        ),
        (
            "fig11_superfluous_removed",
            "Fig. 11 — superfluous nodes removed",
            closure_lean(n),
        ),
        (
            "fig12_pipelined",
            "Fig. 12 — broadcasting replaced by pipelining",
            pipelined(n),
        ),
        (
            "fig14_unidirectional",
            "Fig. 14 — uni-directional flow",
            unidirectional(n),
        ),
        (
            "fig16_regular",
            "Fig. 16 — regularized with delay nodes",
            regular(n),
        ),
    ];

    for (file, title, graph) in figures {
        let dot = to_dot(
            &graph,
            &DotOptions {
                title: format!("{title} (n = {n})"),
                show_inputs: false,
                ..Default::default()
            },
        );
        let path = format!("{outdir}/{file}.dot");
        std::fs::write(&path, &dot)?;
        println!(
            "{path}: {} nodes, {} edges",
            graph.node_count(),
            graph.edge_count()
        );
    }
    println!("\nrender with: neato -n -Tsvg {outdir}/fig16_regular.dot -o fig16.svg");
    Ok(())
}
