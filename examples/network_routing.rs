//! Network routing with algebraic path problems on the systolic engines:
//! the same Fig. 18 array computes shortest-latency routes (min-plus),
//! widest-bandwidth routes (max-min) and smoothest routes (min-max) for a
//! small backbone topology — the semiring generality the methodology
//! affords (§2: "doesn't restrict the algorithm to be of a certain class").
//!
//! ```text
//! cargo run --release --example network_routing
//! ```

use systolic::closure::{shortest_paths_with_routes, Backend, ClosureSolver, WeightedDiGraph};

const SITES: &[&str] = &["sfo", "sea", "den", "ord", "iad", "jfk"];

fn main() {
    // (from, to, latency_ms, bandwidth_gbps)
    let links = [
        (0usize, 1usize, 18u64, 400u64),
        (1, 0, 18, 400),
        (0, 2, 25, 100),
        (2, 0, 25, 100),
        (1, 3, 35, 200),
        (3, 1, 35, 200),
        (2, 3, 19, 400),
        (3, 2, 19, 400),
        (3, 4, 14, 100),
        (4, 3, 14, 100),
        (3, 5, 17, 400),
        (5, 3, 17, 400),
        (4, 5, 6, 400),
        (5, 4, 6, 400),
    ];

    let mut latency = WeightedDiGraph::new(SITES.len());
    let mut bandwidth = WeightedDiGraph::new(SITES.len());
    for &(u, v, ms, gbps) in &links {
        latency.add_edge(u, v, ms);
        bandwidth.add_edge(u, v, gbps);
    }

    let solver = ClosureSolver::new(Backend::Grid { side: 2 });

    // Shortest latency (min-plus closure on the array).
    let dist = solver.shortest_paths(&latency).unwrap();
    // Widest bandwidth (max-min closure on the same array).
    let wide = solver.widest_paths(&bandwidth).unwrap();
    // Smoothest route: minimize the worst single-hop latency (min-max).
    let smooth = solver.minimax_paths(&latency).unwrap();

    // Routes come from the host-side route table (same recurrence with a
    // successor lane).
    let routes = shortest_paths_with_routes(&latency);
    assert_eq!(routes.dist, dist, "array distances match the route table");

    let (src, dst) = (0usize, 5usize); // sfo → jfk
    let route: Vec<&str> = routes
        .route(src, dst)
        .unwrap()
        .into_iter()
        .map(|v| SITES[v])
        .collect();
    println!("sfo → jfk");
    println!(
        "  shortest latency : {} ms via {:?}",
        dist.get(src, dst),
        route
    );
    println!("  widest bandwidth : {} Gbps", wide.get(src, dst));
    println!("  smoothest route  : worst hop {} ms", smooth.get(src, dst));

    // Sanity: sfo→jfk best latency is sfo→den→ord→jfk = 25+19+17 = 61.
    assert_eq!(*dist.get(src, dst), 61);
    // Widest path avoids the 100G links: sfo→sea→ord... min(400,200,400)=200.
    assert_eq!(*wide.get(src, dst), 200);

    println!("\nall-pairs latency matrix (ms):");
    print!("      ");
    for s in SITES {
        print!("{s:>6}");
    }
    println!();
    for (i, s) in SITES.iter().enumerate() {
        print!("{s:>6}");
        for j in 0..SITES.len() {
            print!("{:>6}", dist.get(i, j));
        }
        println!();
    }
}
