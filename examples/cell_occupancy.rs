//! Renders the pipelined G-set schedule (Fig. 20) as a live Gantt chart:
//! each row is one cell of the linear partitioned array, each digit is the
//! G-graph row `k mod 10` of the G-node the cell is streaming.
//!
//! The block-major "vertical path" schedule is directly visible: cells walk
//! down the rows of one h-block (digits 0,1,2,…) and then start the next
//! block, overlapped with their neighbors.
//!
//! ```text
//! cargo run --release --example cell_occupancy [n] [m]
//! ```

use systolic::arraysim::{occupancy_summary, render_gantt};
use systolic::closure::gnp;
use systolic::partition::{ClosureEngine, LinearEngine};
use systolic_semiring::Bool;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let m: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let a = gnp(n, 0.25, 4).adjacency_matrix();
    let eng = LinearEngine::new(m).with_trace();
    let (_, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();

    println!(
        "linear partitioned array: n = {n}, m = {m} — {} cycles, occupancy {:.3}\n",
        stats.cycles,
        stats.occupancy()
    );
    println!("digit = G-graph row k (mod 10) being streamed; '.' = idle\n");
    print!("{}", render_gantt(&stats.spans, m, stats.cycles, 150));

    println!();
    for (c, (busy, tasks)) in occupancy_summary(&stats.spans, m).iter().enumerate() {
        println!(
            "cell {c}: {tasks} G-nodes, {busy} busy cycles ({:.3} of total)",
            *busy as f64 / stats.cycles as f64
        );
    }
    println!(
        "\npaper: {} G-nodes of time {} over {} cells → ideal {} cycles",
        n * (n + 1),
        n,
        m,
        n * n * (n + 1) / m
    );
}
