//! Walks the paper's transformation pipeline (§2–§3) step by step for a
//! chosen problem size, printing the implementation property each stage
//! establishes and verifying that semantics are preserved throughout.
//!
//! ```text
//! cargo run --release --example transformation_pipeline [n]
//! ```

use systolic::dgraph::{closure_full, closure_lean, eval_closure_graph};
use systolic::transform::{pipelined, regular, unidirectional, validate_stage, GGraph};
use systolic_closure::gnp;
use systolic_semiring::{reflexive, warshall, Bool};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);

    let a = gnp(n, 0.2, 7).adjacency_matrix();
    let want = warshall(&a);
    let ar = reflexive(&a);

    println!("transformation pipeline for transitive closure, n = {n}\n");

    let stages = [
        ("Fig. 10  fully-parallel", closure_full(n)),
        ("Fig. 11  superfluous removed", closure_lean(n)),
        ("Fig. 12  broadcast → pipelined", pipelined(n)),
        ("Fig. 14  flipped (uni-directional)", unidirectional(n)),
        ("Fig. 16  regularized (delay nodes)", regular(n)),
    ];

    println!(
        "{:<36} {:>8} {:>8} {:>7} {:>7} {:>10} {:>7}",
        "stage", "compute", "delays", "fanout", "uni-xy", "wrap reach", "ok"
    );
    for (name, graph) in &stages {
        let p = validate_stage(graph);
        let result = eval_closure_graph::<Bool>(graph, &ar).expect("stage evaluates");
        let ok = result == want;
        println!(
            "{:<36} {:>8} {:>8} {:>7} {:>3}/{:<3} {:>10} {:>7}",
            name,
            p.compute_nodes,
            p.delay_nodes,
            p.max_fanout,
            p.unidirectional_x,
            p.unidirectional_y,
            p.inter_max_abs_dx,
            ok
        );
        assert!(ok, "{name} changed the algorithm!");
    }

    // And the collapsed G-graph (Fig. 17).
    let gg = GGraph::new(n);
    let got = gg.eval::<Bool>(&ar);
    assert_eq!(got, want);
    println!(
        "\nFig. 17 G-graph: {} rows × {} G-nodes, each of time {} — stream evaluation matches Warshall ✓",
        gg.rows(),
        gg.row_len(),
        gg.gnode_time()
    );
    let useful: usize = gg.iter().map(|id| gg.useful_ops(id)).sum();
    println!(
        "useful ops {} = n(n-1)(n-2) = {}; total slots n²(n+1) = {} → utilization {:.4} = (n-1)(n-2)/(n(n+1))",
        useful,
        n * (n - 1) * (n - 2),
        n * n * (n + 1),
        useful as f64 / (n * n * (n + 1)) as f64
    );
}
