//! `systolic` — command-line front end to the reproduction.
//!
//! ```text
//! systolic closure  [--backend B] [--mapping M] [--threads T] [--show] <edges-file|->
//!                                                            transitive closure
//! systolic paths    <weighted-edges-file> <src> <dst>       shortest route
//! systolic schedule <n> <m> [--grid]                        G-set schedule summary
//! systolic gantt    <n> <m>                                 cell-occupancy chart
//! systolic info     <n> [m]                                 paper's analytic measures
//! systolic campaign [--seed S] [--rate R] [--instances K] …  fault-injection campaign
//! systolic algo     <lu|faddeev> [--mapping M] [-n N]       elimination pipeline vs reference
//! systolic plancache [--n N] [--cells M] [--instances K]    plan-cache reuse check
//! systolic packed   [--n N] [--cells M] [--instances K]     lane-packed identity check
//! systolic serve    [--vertices N|--file F] [--socket ADDR] long-running reachability server
//! ```
//!
//! Edge files are whitespace-separated `u v` (or `u v w` for `paths`) pairs
//! per line, vertices numbered from 0; `-` reads stdin.

use std::io::Read;
use systolic::arraysim::render_gantt;
use systolic::closure::{
    shortest_paths_with_routes, Backend, ClosureSolver, CsrGraph, DiGraph, SparseClosure,
    SparseOptions, WeightedDiGraph,
};
use systolic::metrics::LinearModel;
use systolic::partition::{ClosureEngine, GsetSchedule, LinearEngine, PackedEngine};
use systolic_semiring::Bool;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!();
    eprintln!("usage:");
    eprintln!("  systolic closure  [--backend linear:M|grid:S|lsgp:M|fixed|fixed-linear|reference|bit|blocked:B] [--mapping lpgs:M|lsgp:M|grid:S|fixed|fixed-linear] [--threads T] [--show] <file|->");
    eprintln!("                    [--load mtx-file] [--gen powerlaw:n=N,d=D,seed=S | gnp:n=N,p=P,seed=S | bowtie:n=N,seed=S]");
    eprintln!("                    [--sparse] [--tile T] [--stats]   (sparse path auto-selected above 4096 vertices)");
    eprintln!("  systolic paths    <file> <src> <dst>");
    eprintln!("  systolic schedule <n> <m> [--grid]");
    eprintln!("  systolic gantt    <n> <m>");
    eprintln!("  systolic info     <n> [m]");
    eprintln!(
        "  systolic algo     <lu|faddeev> [--mapping lpgs:M|grid:S] [-n N] [--seed S] [--timed]"
    );
    eprintln!("  systolic campaign [--seed S] [--n N] [--cells M] [--instances K] [--rate R] [--retries T] [--hot CELL:WEIGHT] [--packed-lane L]");
    eprintln!("  systolic plancache [--n N] [--cells M] [--instances K] [--iters I]");
    eprintln!("  systolic packed   [--n N] [--cells M] [--instances K] [--iters I]");
    eprintln!("  systolic serve    [--vertices N | --file F|-] [--batched] [--cells M] [--socket ADDR] [--sessions K] [--accept N]");
    eprintln!("                    [--wal F [--snapshot-every N]] [--max-pending N] [--max-line BYTES] [--read-timeout-ms MS]");
    std::process::exit(2);
}

fn read_input(path: &str) -> String {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .unwrap_or_else(|e| fail(&format!("reading stdin: {e}")));
        s
    } else {
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")))
    }
}

fn parse_edges(text: &str, weighted: bool) -> (usize, Vec<(usize, usize, u64)>) {
    let mut edges = Vec::new();
    let mut max_v = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> usize {
            tok.and_then(|t| t.parse().ok())
                .unwrap_or_else(|| fail(&format!("line {}: malformed edge", lineno + 1)))
        };
        let u = parse(it.next());
        let v = parse(it.next());
        let w = if weighted { parse(it.next()) as u64 } else { 1 };
        if let Some(extra) = it.next() {
            fail(&format!(
                "line {}: trailing token `{extra}` after edge",
                lineno + 1
            ));
        }
        max_v = max_v.max(u).max(v);
        edges.push((u, v, w));
    }
    if edges.is_empty() {
        fail("input contains no edges (empty or comment-only)");
    }
    (max_v + 1, edges)
}

/// Rejects zero-sized array parameters at the flag parser, so `linear:0`
/// and friends exit with a usage message instead of reaching an engine.
fn positive(what: &str, v: usize) -> usize {
    if v == 0 {
        fail(&format!("{what} must be at least 1"));
    }
    v
}

fn parse_backend(spec: &str) -> Backend {
    let (name, arg) = match spec.split_once(':') {
        Some((n, a)) => (n, Some(a)),
        None => (spec, None),
    };
    let num = |d: usize| -> usize {
        arg.and_then(|a| a.parse().ok()).unwrap_or_else(|| {
            if arg.is_none() {
                d
            } else {
                fail("bad backend argument")
            }
        })
    };
    match name {
        "linear" => Backend::Linear {
            cells: positive("backend `linear` cell count", num(4)),
        },
        "grid" => Backend::Grid {
            side: positive("backend `grid` side", num(2)),
        },
        "lsgp" => Backend::Lsgp {
            cells: positive("backend `lsgp` cell count", num(4)),
        },
        "fixed" => Backend::FixedArray,
        "fixed-linear" => Backend::FixedLinear,
        "reference" => Backend::Reference,
        "bit" => Backend::BitParallel,
        "blocked" => Backend::Blocked {
            tile: positive("backend `blocked` tile size", num(4)),
        },
        _ => fail(&format!("unknown backend `{spec}`")),
    }
}

/// `--mapping` speaks the mapping layer's vocabulary (`lpgs` is the
/// paper's name for the cut-and-pile linear array) and resolves to the
/// same simulated backends.
fn parse_mapping(spec: &str) -> Backend {
    let (name, arg) = match spec.split_once(':') {
        Some((n, a)) => (n, Some(a)),
        None => (spec, None),
    };
    let num = |d: usize| -> usize {
        arg.and_then(|a| a.parse().ok()).unwrap_or_else(|| {
            if arg.is_none() {
                d
            } else {
                fail("bad mapping argument")
            }
        })
    };
    match name {
        "lpgs" => Backend::Linear {
            cells: positive("mapping `lpgs` cell count", num(4)),
        },
        "lsgp" => Backend::Lsgp {
            cells: positive("mapping `lsgp` cell count", num(4)),
        },
        "grid" => Backend::Grid {
            side: positive("mapping `grid` side", num(2)),
        },
        "fixed" => Backend::FixedArray,
        "fixed-linear" => Backend::FixedLinear,
        _ => fail(&format!(
            "unknown mapping `{spec}` (expected lpgs[:M], lsgp[:M], grid[:S], fixed, fixed-linear)"
        )),
    }
}

/// Parses a `--gen` spec: `kind:key=val,key=val` with kinds `powerlaw`
/// (keys n, d, seed), `gnp` (n, p, seed) and `bowtie` (n, seed).
fn parse_gen(spec: &str) -> CsrGraph {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    let mut n = 0usize;
    let mut d = 4usize;
    let mut p = 0.01f64;
    let mut seed = 1u64;
    for kv in rest.split(',').filter(|s| !s.is_empty()) {
        let Some((k, v)) = kv.split_once('=') else {
            fail(&format!("--gen: `{kv}` is not key=value"));
        };
        let bad = || -> ! { fail(&format!("--gen: bad value in `{kv}`")) };
        match k {
            "n" => n = v.parse().unwrap_or_else(|_| bad()),
            "d" => d = v.parse().unwrap_or_else(|_| bad()),
            "p" => p = v.parse().unwrap_or_else(|_| bad()),
            "seed" => seed = v.parse().unwrap_or_else(|_| bad()),
            _ => fail(&format!("--gen: unknown key `{k}`")),
        }
    }
    let n = positive("--gen vertex count n", n);
    match kind {
        "powerlaw" => systolic::closure::powerlaw(n, d, seed),
        "gnp" => systolic::closure::gnp_csr(n, p, seed),
        "bowtie" => systolic::closure::bowtie(n, seed),
        _ => fail(&format!(
            "--gen: unknown kind `{kind}` (expected powerlaw, gnp, bowtie)"
        )),
    }
}

/// Above this vertex count, `closure` routes through the sparse plane
/// unless an explicit dense `--backend`/`--mapping` pins it down.
const SPARSE_AUTO_THRESHOLD: usize = 4096;

fn cmd_closure(args: &[String]) {
    let mut backend = Backend::Linear { cells: 4 };
    let mut backend_explicit = false;
    let mut threads = 1usize;
    let mut show = false;
    let mut stats = false;
    let mut sparse = false;
    let mut tile: Option<usize> = None;
    let mut file = None;
    let mut graph: Option<CsrGraph> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                i += 1;
                backend = parse_backend(
                    args.get(i)
                        .map(String::as_str)
                        .unwrap_or_else(|| fail("--backend needs a value")),
                );
                backend_explicit = true;
            }
            "--mapping" => {
                i += 1;
                backend = parse_mapping(
                    args.get(i)
                        .map(String::as_str)
                        .unwrap_or_else(|| fail("--mapping needs a value")),
                );
                backend_explicit = true;
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|a| a.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| fail("--threads needs a positive integer"));
            }
            "--load" => {
                i += 1;
                let path = args
                    .get(i)
                    .unwrap_or_else(|| fail("--load needs a Matrix-Market file"));
                graph = Some(
                    CsrGraph::load(std::path::Path::new(path))
                        .unwrap_or_else(|e| fail(&format!("loading {path}: {e}"))),
                );
            }
            "--gen" => {
                i += 1;
                graph = Some(parse_gen(
                    args.get(i)
                        .map(String::as_str)
                        .unwrap_or_else(|| fail("--gen needs a spec")),
                ));
            }
            "--tile" => {
                i += 1;
                tile = Some(positive(
                    "--tile size",
                    args.get(i)
                        .and_then(|a| a.parse().ok())
                        .unwrap_or_else(|| fail("--tile needs a positive integer")),
                ));
            }
            "--sparse" => sparse = true,
            "--stats" => stats = true,
            "--show" => show = true,
            other => file = Some(other.to_string()),
        }
        i += 1;
    }
    let graph = graph.unwrap_or_else(|| {
        let file =
            file.unwrap_or_else(|| fail("closure needs an input (file, -, --load or --gen)"));
        let (n, edges) = parse_edges(&read_input(&file), false);
        let pairs: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(u, v, _)| (u as u32, v as u32))
            .collect();
        CsrGraph::from_edges(n, &pairs)
    });
    if stats {
        println!("graph: {}", graph.stats());
    }
    let use_sparse = sparse || (!backend_explicit && graph.n() > SPARSE_AUTO_THRESHOLD);
    if use_sparse {
        closure_sparse(&graph, tile, stats, show);
        return;
    }
    let g = graph.to_digraph();
    let solver = ClosureSolver::new(backend).with_threads(threads);
    let (reach, report) = solver
        .transitive_closure_with_report(&g)
        .unwrap_or_else(|e| fail(&e.to_string()));
    println!(
        "{} vertices, {} edges → {} reachable pairs (backend {})",
        g.n(),
        g.edge_count(),
        reach.pair_count(),
        report.backend
    );
    if report.stats.cycles > 0 {
        println!(
            "simulated: {} cycles on {} cells, utilization {:.3}, I/O {:.3} words/cycle",
            report.stats.cycles,
            report.stats.cells,
            report.stats.useful_utilization(),
            report.stats.io_bandwidth()
        );
    }
    if show {
        for u in 0..g.n() {
            let row: String = (0..g.n())
                .map(|v| if reach.reachable(u, v) { '1' } else { '.' })
                .collect();
            println!("{row}");
        }
    }
}

/// The sparse closure path: condensation + component-DAG closure, no
/// dense `n×n` matrix at any point.
fn closure_sparse(graph: &CsrGraph, tile: Option<usize>, stats: bool, show: bool) {
    let start = std::time::Instant::now();
    let sc = SparseClosure::with_options(
        graph,
        SparseOptions {
            tile,
            ..SparseOptions::default()
        },
    );
    let elapsed = start.elapsed();
    let s = sc.stats(1000, 42);
    println!(
        "{} vertices, {} edges → {} SCCs, {} DAG edges (sparse, {:?} mode, {:.1} ms)",
        s.n,
        s.edges,
        s.scc_count,
        s.dag_edges,
        s.mode,
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "fill-in: {:.3e} reachable pairs ({}), resident {:.1} MiB",
        s.fill.pairs,
        if s.fill.exact { "exact" } else { "sampled" },
        s.memory_bytes as f64 / (1024.0 * 1024.0)
    );
    if stats {
        println!(
            "condensation: {} nontrivial SCCs, largest row {:.3e} of {} vertices",
            s.nontrivial_sccs,
            (0..sc.n().min(64))
                .map(|u| sc.row_len(u))
                .max()
                .unwrap_or(0) as f64,
            s.n
        );
        if let Some(t) = tile {
            let edges: Vec<(u32, u32)> = sc.condensation().dag.edges().collect();
            let (_, ts) =
                systolic::partition::tiled_dag_closure(sc.condensation().len(), &edges, t);
            println!(
                "tiles: {}x{} grid of t={}, {}/{} input occupied, {}/{} output occupied ({:.1}%), {} muls, {} skipped",
                ts.grid,
                ts.grid,
                ts.tile,
                ts.occupied_input_tiles,
                ts.total_tiles,
                ts.occupied_output_tiles,
                ts.total_tiles,
                ts.output_occupancy() * 100.0,
                ts.tile_muls,
                ts.skipped_muls
            );
        }
    }
    if show {
        if graph.n() > 256 {
            fail("--show is capped at 256 vertices (use queries instead)");
        }
        for u in 0..graph.n() {
            let row: String = (0..graph.n())
                .map(|v| if sc.reachable(u, v) { '1' } else { '.' })
                .collect();
            println!("{row}");
        }
    }
}

fn cmd_paths(args: &[String]) {
    let [file, src, dst] = args else {
        fail("paths needs <file> <src> <dst>")
    };
    let (n, edges) = parse_edges(&read_input(file), true);
    let mut g = WeightedDiGraph::new(n);
    for (u, v, w) in edges {
        g.add_edge(u, v, w);
    }
    let src: usize = src.parse().unwrap_or_else(|_| fail("bad src"));
    let dst: usize = dst.parse().unwrap_or_else(|_| fail("bad dst"));
    if src >= n || dst >= n {
        fail("src/dst out of range");
    }
    let table = shortest_paths_with_routes(&g);
    match table.route(src, dst) {
        Some(route) => println!("distance {} via {:?}", table.distance(src, dst), route),
        None => println!("{dst} is unreachable from {src}"),
    }
}

fn cmd_schedule(args: &[String]) {
    let (mut n, mut m, mut grid) = (None, None, false);
    for a in args {
        match a.as_str() {
            "--grid" => grid = true,
            other => {
                if n.is_none() {
                    n = other.parse().ok();
                } else {
                    m = other.parse().ok();
                }
            }
        }
    }
    let n: usize = n.unwrap_or_else(|| fail("schedule needs n"));
    let m: usize = m.unwrap_or_else(|| fail("schedule needs m"));
    let s = if grid {
        GsetSchedule::grid(n, m)
    } else {
        GsetSchedule::linear(n, m)
    };
    println!(
        "{} mapping, n = {n}, {} cells: {} G-sets ({} boundary), {} G-nodes",
        if grid { "grid" } else { "linear" },
        s.cells,
        s.len(),
        s.boundary_sets(),
        s.total_gnodes()
    );
    match s.verify_legal() {
        Ok(()) => println!("schedule is dependence-legal ✓"),
        Err(e) => fail(&format!("ILLEGAL schedule: {e}")),
    }
}

fn cmd_gantt(args: &[String]) {
    let [n, m] = args else {
        fail("gantt needs <n> <m>")
    };
    let n: usize = n.parse().unwrap_or_else(|_| fail("bad n"));
    let m: usize = m.parse().unwrap_or_else(|_| fail("bad m"));
    let a = systolic::closure::gnp(n, 0.2, 1).adjacency_matrix();
    let eng = LinearEngine::new(m).with_trace();
    let (_, stats) =
        ClosureEngine::<Bool>::closure(&eng, &a).unwrap_or_else(|e| fail(&e.to_string()));
    println!(
        "n = {n}, m = {m}: {} cycles, occupancy {:.3}",
        stats.cycles,
        stats.occupancy()
    );
    print!("{}", render_gantt(&stats.spans, m, stats.cycles, 160));
}

fn cmd_info(args: &[String]) {
    let n: usize = args
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| fail("info needs n"));
    let m: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let model = LinearModel { n, m };
    println!("paper measures for n = {n}, m = {m} (Moreno & Lang 1988, §3–§4):");
    println!(
        "  useful operations N = n(n-1)(n-2)  : {}",
        model.useful_ops()
    );
    println!(
        "  G-sets n(n+1)/m                    : {:.1}",
        model.gsets()
    );
    println!(
        "  throughput T = m/(n²(n+1))          : {:.3e} problems/cycle",
        model.throughput()
    );
    println!(
        "  cycles per problem T⁻¹              : {:.0}",
        model.cycles_per_instance()
    );
    println!(
        "  utilization U = (n-1)(n-2)/(n(n+1)) : {:.4}",
        model.utilization()
    );
    println!(
        "  host I/O D = m/n                    : {:.4} words/cycle",
        model.io_bandwidth()
    );
    println!(
        "  memory connections (linear)         : {}",
        model.memory_connections()
    );
    println!("  partitioning overhead               : 0");
}

/// Runs an elimination algorithm (LU or Faddeev) through the simulated
/// partitioned array and cross-checks every output word bit-for-bit
/// against the fully-parallel dependence-graph evaluation.
fn cmd_algo(args: &[String]) {
    use systolic::partition::{
        elimination_input, level_durations, run_elimination, run_elimination_timed, Algo,
        EliminationMapping,
    };
    let mut algo: Option<Algo> = None;
    let mut mapping = EliminationMapping::Linear { m: 4 };
    let mut n = 8usize;
    let mut seed = 1u64;
    let mut timed = false;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i)
                .map(String::as_str)
                .unwrap_or_else(|| fail(&format!("{} needs a value", args[i - 1])))
        };
        match args[i].as_str() {
            "lu" => algo = Some(Algo::Lu),
            "faddeev" => algo = Some(Algo::Faddeev),
            "--mapping" => {
                i += 1;
                let spec = value(i);
                let (name, arg) = spec.split_once(':').unwrap_or((spec, "4"));
                let c = positive(
                    "algo mapping size",
                    arg.parse().unwrap_or_else(|_| fail("bad mapping argument")),
                );
                mapping = match name {
                    "lpgs" => EliminationMapping::Linear { m: c },
                    "grid" => EliminationMapping::Grid { s: c },
                    _ => fail(&format!(
                        "unknown algo mapping `{spec}` (expected lpgs[:M] or grid[:S])"
                    )),
                };
            }
            "-n" | "--n" => {
                i += 1;
                n = positive("-n", value(i).parse().unwrap_or_else(|_| fail("bad -n")));
            }
            "--seed" => {
                i += 1;
                seed = value(i).parse().unwrap_or_else(|_| fail("bad --seed"));
            }
            "--timed" => timed = true,
            other => fail(&format!("unknown algo argument `{other}`")),
        }
        i += 1;
    }
    let algo = algo.unwrap_or_else(|| fail("algo needs `lu` or `faddeev`"));
    if n < 2 {
        fail("algo needs n ≥ 2");
    }
    let msize = algo.msize(n);
    let a = elimination_input(msize, seed);
    let (got, stats) = if timed {
        run_elimination_timed(algo, mapping, &a, &level_durations(algo, n))
    } else {
        run_elimination(algo, mapping, &a)
    }
    .unwrap_or_else(|e| fail(&e.to_string()));
    let graph = match algo {
        Algo::Lu => systolic::dgraph::lu_graph(n),
        Algo::Faddeev => systolic::dgraph::faddeev_graph(n),
    };
    let want = systolic::dgraph::eval_elimination_graph::<systolic::semiring::Real>(&graph, &a)
        .unwrap_or_else(|e| fail(&format!("reference evaluation: {e:?}")));
    let mut mismatches = 0usize;
    for i in 0..msize {
        for j in 0..msize {
            if got.get(i, j) != want.get(i, j) {
                mismatches += 1;
            }
        }
    }
    println!(
        "{} n = {n} ({msize}×{msize} matrix, {} levels) on {} ({} cells{})",
        algo.name(),
        algo.levels(n),
        mapping.name(),
        mapping.cells(),
        if timed {
            ", §4.3 varying G-node times"
        } else {
            ""
        }
    );
    println!(
        "simulated: {} cycles, occupancy {:.3}, useful utilization {:.3}, {} useful ops",
        stats.cycles,
        stats.occupancy(),
        stats.useful_utilization(),
        stats.useful_ops
    );
    if algo == Algo::Faddeev {
        println!("lower-right n×n block is the Schur complement D + C·A⁻¹·B");
    }
    println!(
        "all {} output words bit-identical to the dependence-graph reference: {}",
        msize * msize,
        mismatches == 0
    );
    if mismatches > 0 {
        eprintln!("error: {mismatches} words diverged from the reference");
        std::process::exit(1);
    }
}

fn cmd_campaign(args: &[String]) {
    use systolic_bench::campaign::{render_campaign, run_campaign, CampaignConfig};
    let mut cfg = CampaignConfig::default();
    let mut packed_lane: Option<usize> = None;
    let mut rate_set = false;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i)
                .map(String::as_str)
                .unwrap_or_else(|| fail(&format!("{} needs a value", args[i - 1])))
        };
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                cfg.seed = value(i).parse().unwrap_or_else(|_| fail("bad --seed"));
            }
            "--n" => {
                i += 1;
                cfg.n = value(i).parse().unwrap_or_else(|_| fail("bad --n"));
            }
            "--cells" => {
                i += 1;
                cfg.cells = value(i).parse().unwrap_or_else(|_| fail("bad --cells"));
            }
            "--instances" => {
                i += 1;
                cfg.instances = value(i).parse().unwrap_or_else(|_| fail("bad --instances"));
            }
            "--rate" => {
                i += 1;
                cfg.rate = value(i).parse().unwrap_or_else(|_| fail("bad --rate"));
                rate_set = true;
            }
            "--density" => {
                i += 1;
                cfg.density = value(i).parse().unwrap_or_else(|_| fail("bad --density"));
            }
            "--retries" => {
                i += 1;
                cfg.max_retries = value(i).parse().unwrap_or_else(|_| fail("bad --retries"));
            }
            "--hot" => {
                i += 1;
                let (c, w) = value(i)
                    .split_once(':')
                    .unwrap_or_else(|| fail("--hot takes CELL:WEIGHT"));
                cfg.hot_cell = Some((
                    c.parse().unwrap_or_else(|_| fail("bad --hot cell")),
                    w.parse().unwrap_or_else(|_| fail("bad --hot weight")),
                ));
            }
            "--packed-lane" => {
                i += 1;
                packed_lane = Some(
                    value(i)
                        .parse()
                        .unwrap_or_else(|_| fail("bad --packed-lane")),
                );
            }
            other => fail(&format!("unknown campaign flag `{other}`")),
        }
        i += 1;
    }
    if cfg.n < 2 || cfg.cells < 2 || cfg.instances == 0 {
        fail("campaign needs n ≥ 2, cells ≥ 2 and at least one instance");
    }
    if let Some(lane) = packed_lane {
        if cfg.hot_cell.is_some() {
            fail("--hot applies to the scalar campaign only");
        }
        cmd_packed_campaign(&cfg, lane, rate_set);
        return;
    }
    let report = run_campaign(&cfg).unwrap_or_else(|e| fail(&e.to_string()));
    let replay = run_campaign(&cfg).unwrap_or_else(|e| fail(&e.to_string()));
    print!("{}", render_campaign(&cfg, &report));
    println!(
        "replay with the same seed reproduces the identical report: {}",
        report == replay
    );
    if report.unexplained_mismatches > 0 {
        eprintln!(
            "error: {} corrupted closure(s) with no injected fault to blame — engine bug",
            report.unexplained_mismatches
        );
        std::process::exit(1);
    }
    if report.coverage().is_some_and(|c| c < 0.95) {
        eprintln!("error: detection coverage fell below the 95% claim");
        std::process::exit(1);
    }
    if report != replay {
        eprintln!("error: campaign is not reproducible at seed {}", cfg.seed);
        std::process::exit(1);
    }
}

fn cmd_packed_campaign(
    scalar: &systolic_bench::campaign::CampaignConfig,
    lane: usize,
    rate_set: bool,
) {
    use systolic_bench::campaign::{
        render_packed_campaign, run_packed_campaign, PackedCampaignConfig,
    };
    let mut cfg = PackedCampaignConfig {
        seed: scalar.seed,
        n: scalar.n,
        density: scalar.density,
        cells: scalar.cells,
        instances: scalar.instances,
        target_lane: lane,
        max_retries: scalar.max_retries,
        ..PackedCampaignConfig::default()
    };
    if rate_set {
        // The packed default is a value-fault-only rate tuned to land
        // several corruptions per batch; honor an explicit override.
        cfg.rate = scalar.rate;
    }
    let report = run_packed_campaign(&cfg).unwrap_or_else(|e| fail(&e.to_string()));
    let replay = run_packed_campaign(&cfg).unwrap_or_else(|e| fail(&e.to_string()));
    print!("{}", render_packed_campaign(&cfg, &report));
    println!(
        "replay with the same seed reproduces the identical report: {}",
        report == replay
    );
    if !report.contained() {
        eprintln!(
            "error: packed fault containment failed (fallbacks {}/{}, off-target {}, \
             unexplained {}, recovered {})",
            report.raw_fallback_runs,
            report.recovering_fallback_runs,
            report.off_target_mismatches,
            report.unexplained_mismatches,
            report.recovered_exact
        );
        std::process::exit(1);
    }
    if report != replay {
        eprintln!(
            "error: packed campaign is not reproducible at seed {}",
            cfg.seed
        );
        std::process::exit(1);
    }
}

fn cmd_plancache(args: &[String]) {
    use std::time::Instant;
    use systolic::closure::gnp;
    let (mut n, mut m, mut instances, mut iters) = (24usize, 4usize, 8usize, 5u32);
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i)
                .map(String::as_str)
                .unwrap_or_else(|| fail(&format!("{} needs a value", args[i - 1])))
        };
        match args[i].as_str() {
            "--n" => {
                i += 1;
                n = value(i).parse().unwrap_or_else(|_| fail("bad --n"));
            }
            "--cells" => {
                i += 1;
                m = value(i).parse().unwrap_or_else(|_| fail("bad --cells"));
            }
            "--instances" => {
                i += 1;
                instances = value(i).parse().unwrap_or_else(|_| fail("bad --instances"));
            }
            "--iters" => {
                i += 1;
                iters = value(i).parse().unwrap_or_else(|_| fail("bad --iters"));
            }
            other => fail(&format!("unknown plancache flag `{other}`")),
        }
        i += 1;
    }
    if n < 2 || m < 1 || instances == 0 || iters == 0 {
        fail("plancache needs n ≥ 2, cells ≥ 1, at least one instance and one iteration");
    }
    let batch: Vec<_> = (0..instances)
        .map(|i| gnp(n, 0.15, 91 + i as u64).adjacency_matrix())
        .collect();
    let cached_eng = LinearEngine::new(m);
    let (first_res, first_stats) = ClosureEngine::<Bool>::closure_many(&cached_eng, &batch)
        .unwrap_or_else(|e| fail(&e.to_string()));
    let (cached_res, cached_stats) = ClosureEngine::<Bool>::closure_many(&cached_eng, &batch)
        .unwrap_or_else(|e| fail(&e.to_string()));
    let (fresh_res, fresh_stats) =
        ClosureEngine::<Bool>::closure_many(&LinearEngine::new(m), &batch)
            .unwrap_or_else(|e| fail(&e.to_string()));
    let identical = cached_res == fresh_res
        && first_res == fresh_res
        && cached_stats == fresh_stats
        && first_stats == fresh_stats;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = ClosureEngine::<Bool>::closure_many(&LinearEngine::new(m), &batch).unwrap();
    }
    let fresh_t = t0.elapsed().as_secs_f64() / f64::from(iters);
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = ClosureEngine::<Bool>::closure_many(&cached_eng, &batch).unwrap();
    }
    let cached_t = t0.elapsed().as_secs_f64() / f64::from(iters);
    println!(
        "linear m = {m}, n = {n}, batch {instances}: {} cycles per batch",
        fresh_stats.cycles
    );
    println!(
        "fresh build {:.2} ms, cached plan {:.2} ms, speedup {:.2}×",
        1e3 * fresh_t,
        1e3 * cached_t,
        fresh_t / cached_t
    );
    println!("cached-plan run byte-identical to fresh build: {identical}");
    if !identical {
        eprintln!("error: plan cache changed results or stats");
        std::process::exit(1);
    }
}

fn cmd_packed(args: &[String]) {
    use std::time::Instant;
    use systolic::closure::gnp;
    use systolic_arraysim::RunStats;
    let (mut n, mut m, mut instances, mut iters) = (24usize, 4usize, 64usize, 5u32);
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i)
                .map(String::as_str)
                .unwrap_or_else(|| fail(&format!("{} needs a value", args[i - 1])))
        };
        match args[i].as_str() {
            "--n" => {
                i += 1;
                n = value(i).parse().unwrap_or_else(|_| fail("bad --n"));
            }
            "--cells" => {
                i += 1;
                m = value(i).parse().unwrap_or_else(|_| fail("bad --cells"));
            }
            "--instances" => {
                i += 1;
                instances = value(i).parse().unwrap_or_else(|_| fail("bad --instances"));
            }
            "--iters" => {
                i += 1;
                iters = value(i).parse().unwrap_or_else(|_| fail("bad --iters"));
            }
            other => fail(&format!("unknown packed flag `{other}`")),
        }
        i += 1;
    }
    if n < 2 || m < 1 || instances == 0 || iters == 0 {
        fail("packed needs n ≥ 2, cells ≥ 1, at least one instance and one iteration");
    }
    let batch: Vec<_> = (0..instances)
        .map(|i| gnp(n, 0.15, 64 + i as u64).adjacency_matrix())
        .collect();
    // Scalar reference: per-instance runs, stats merged in instance order
    // (the contract the packed engine must reproduce bit-for-bit).
    let scalar = LinearEngine::new(m);
    let mut want = Vec::with_capacity(instances);
    let mut want_stats: Option<RunStats> = None;
    for a in &batch {
        let (c, s) = scalar.closure(a).unwrap_or_else(|e| fail(&e.to_string()));
        want.push(c);
        match &mut want_stats {
            None => want_stats = Some(s),
            Some(acc) => acc.merge(&s),
        }
    }
    let want_stats = want_stats.expect("non-empty batch");
    let packed = PackedEngine::new(m);
    let (got, got_stats) = packed
        .closure_many(&batch)
        .unwrap_or_else(|e| fail(&e.to_string()));
    let identical = got == want && got_stats == want_stats;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = ClosureEngine::<Bool>::closure_many(&scalar, &batch).unwrap();
    }
    let scalar_t = t0.elapsed().as_secs_f64() / f64::from(iters);
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = packed.closure_many(&batch).unwrap();
    }
    let packed_t = t0.elapsed().as_secs_f64() / f64::from(iters);
    println!(
        "packed m = {m}, n = {n}, batch {instances} ({} lane group{}):",
        instances.div_ceil(64),
        if instances > 64 { "s" } else { "" }
    );
    println!(
        "scalar batch {:.2} ms, lane-packed {:.2} ms, speedup {:.2}×",
        1e3 * scalar_t,
        1e3 * packed_t,
        scalar_t / packed_t
    );
    println!("packed results and merged stats byte-identical to scalar: {identical}");
    if !identical {
        eprintln!("error: lane-packed run diverged from the scalar engine");
        std::process::exit(1);
    }
}

fn cmd_serve(args: &[String]) {
    use std::sync::Arc;
    use systolic_service::{
        serve, serve_tcp, Durability, ReachService, SessionLimits, SharedService,
    };
    let mut vertices: Option<usize> = None;
    let mut file: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut sessions = 4usize;
    let mut accept: Option<usize> = None;
    let mut batched = false;
    let mut cells = 4usize;
    let mut wal: Option<String> = None;
    let mut snapshot_every: Option<u64> = None;
    let mut max_pending: Option<u64> = None;
    let mut limits = SessionLimits::default();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i)
                .map(String::as_str)
                .unwrap_or_else(|| fail(&format!("{} needs a value", args[i - 1])))
        };
        match args[i].as_str() {
            "--vertices" => {
                i += 1;
                vertices = Some(value(i).parse().unwrap_or_else(|_| fail("bad --vertices")));
            }
            "--file" => {
                i += 1;
                file = Some(value(i).to_string());
            }
            "--socket" => {
                i += 1;
                socket = Some(value(i).to_string());
            }
            "--sessions" => {
                i += 1;
                sessions = value(i).parse().unwrap_or_else(|_| fail("bad --sessions"));
            }
            "--accept" => {
                i += 1;
                accept = Some(value(i).parse().unwrap_or_else(|_| fail("bad --accept")));
            }
            "--wal" => {
                i += 1;
                wal = Some(value(i).to_string());
            }
            "--snapshot-every" => {
                i += 1;
                snapshot_every = Some(
                    value(i)
                        .parse()
                        .unwrap_or_else(|_| fail("bad --snapshot-every")),
                );
            }
            "--max-pending" => {
                i += 1;
                max_pending = Some(
                    value(i)
                        .parse()
                        .unwrap_or_else(|_| fail("bad --max-pending")),
                );
            }
            "--max-line" => {
                i += 1;
                limits.max_line = value(i).parse().unwrap_or_else(|_| fail("bad --max-line"));
            }
            "--read-timeout-ms" => {
                i += 1;
                let ms: u64 = value(i)
                    .parse()
                    .unwrap_or_else(|_| fail("bad --read-timeout-ms"));
                limits.read_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--batched" => batched = true,
            "--cells" => {
                i += 1;
                cells = value(i).parse().unwrap_or_else(|_| fail("bad --cells"));
            }
            other => fail(&format!("unknown serve flag `{other}`")),
        }
        i += 1;
    }
    if snapshot_every.is_some() && wal.is_none() {
        fail("--snapshot-every needs --wal");
    }
    let graph = match (&file, vertices) {
        (Some(_), Some(_)) => fail("serve takes --vertices or --file, not both"),
        (Some(f), None) => {
            let (n, edges) = parse_edges(&read_input(f), false);
            let mut g = DiGraph::new(n);
            for (u, v, _) in edges {
                g.add_edge(u, v);
            }
            g
        }
        (None, n) => {
            let n = n.unwrap_or(64);
            if n < 2 {
                fail("serve needs at least two vertices");
            }
            DiGraph::new(n)
        }
    };
    // Recover from the WAL+snapshot before building the service, so the
    // closure is computed from exactly the committed history.
    let (graph, durability) = match &wal {
        Some(path) => {
            let (d, g, report) =
                Durability::open(std::path::Path::new(path), snapshot_every, graph)
                    .unwrap_or_else(|e| fail(&format!("recovering {path}: {e}")));
            eprintln!(
                "recovered {path}: snapshot_seq={} replayed={} torn_bytes={} wal_bytes={}",
                report
                    .snapshot_seq
                    .map_or("none".to_string(), |s| s.to_string()),
                report.replayed,
                report.torn_bytes,
                report.wal_bytes,
            );
            (g, Some(d))
        }
        None => (graph, None),
    };
    let mut svc = if batched {
        let cells = positive("serve --cells", cells);
        let batcher = Arc::new(systolic::partition::AdmissionBatcher::new(
            PackedEngine::new(cells),
        ));
        ReachService::with_batcher(graph, batcher)
    } else {
        ReachService::new(graph)
    };
    if let Some(d) = durability {
        svc = svc.with_durability(d);
    }
    svc.set_max_pending(max_pending);
    eprintln!(
        "serving {} vertices ({} recomputes{}){}",
        svc.n(),
        if batched { "batched" } else { "software" },
        if wal.is_some() { ", durable" } else { "" },
        socket
            .as_deref()
            .map_or(String::new(), |s| format!(" on {s}")),
    );
    let shared = Arc::new(SharedService::new(svc, limits));
    let summary = match socket {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr)
                .unwrap_or_else(|e| fail(&format!("binding {addr}: {e}")));
            serve_tcp(&shared, &listener, sessions, accept)
        }
        None => serve(&shared, std::io::stdin().lock(), std::io::stdout().lock()),
    }
    .unwrap_or_else(|e| fail(&format!("serve I/O: {e}")));
    eprintln!(
        "session over: {} commands, {} errors, ended by {}",
        summary.commands,
        summary.errors,
        if summary.quit { "QUIT" } else { "EOF" }
    );
    if summary.sessions > 0 {
        eprintln!(
            "daemon totals: {} sessions ({} failed, {} timed out), {} stale reads",
            summary.sessions,
            summary.failed_sessions,
            summary.timeouts,
            shared.stale_reads(),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "closure" => cmd_closure(rest),
            "paths" => cmd_paths(rest),
            "schedule" => cmd_schedule(rest),
            "gantt" => cmd_gantt(rest),
            "info" => cmd_info(rest),
            "algo" => cmd_algo(rest),
            "campaign" => cmd_campaign(rest),
            "plancache" => cmd_plancache(rest),
            "packed" => cmd_packed(rest),
            "serve" => cmd_serve(rest),
            other => fail(&format!("unknown command `{other}`")),
        },
        None => fail("missing command"),
    }
}
