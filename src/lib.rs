//! Facade crate re-exporting the full systolic partitioning workspace API.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use systolic_arraysim as arraysim;
pub use systolic_baselines as baselines;
pub use systolic_closure as closure;
pub use systolic_dgraph as dgraph;
pub use systolic_metrics as metrics;
pub use systolic_partition as partition;
pub use systolic_semiring as semiring;
pub use systolic_service as service;
pub use systolic_transform as transform;
