//! Property-based cross-mapping equivalence: every mapping in the engine
//! stack — cut-and-pile linear at several widths, the fixed-size arrays,
//! the 2-D grid, and the coalescing LSGP ring — must produce *bit-identical*
//! closures to the Warshall reference and to each other, over both `Bool`
//! and `MinPlus`, and a cached (memoized-plan, recycled-simulator) second
//! run must reproduce the first exactly. This is the contract that lets
//! `MappedEngine<M>` treat mappings as interchangeable geometry.

use systolic::partition::{
    ClosureEngine, FixedArrayEngine, FixedLinearEngine, GridEngine, LinearEngine, LsgpEngine,
};
use systolic_semiring::{warshall, Bool, DenseMatrix, MinPlus, PathSemiring};
use systolic_util::{Checker, Rng};

fn bool_batch(rng: &mut Rng, n: usize, len: usize) -> Vec<DenseMatrix<Bool>> {
    (0..len)
        .map(|_| DenseMatrix::from_fn(n, n, |_, _| rng.gen_bool(0.3)))
        .collect()
}

fn weight_batch(rng: &mut Rng, n: usize, len: usize) -> Vec<DenseMatrix<MinPlus>> {
    (0..len)
        .map(|_| {
            DenseMatrix::from_fn(n, n, |_, _| {
                if rng.gen_bool(0.5) {
                    u64::MAX
                } else {
                    rng.gen_range_u64(1, 50)
                }
            })
        })
        .collect()
}

/// Runs `batch` twice on `engine` (compile, then cached replay); both runs
/// must match the Warshall reference per instance, bit for bit.
fn assert_matches_reference<S, E>(engine: &E, batch: &[DenseMatrix<S>], what: &str)
where
    S: PathSemiring,
    E: ClosureEngine<S>,
    DenseMatrix<S>: PartialEq + std::fmt::Debug,
{
    let (first, _) = engine
        .closure_many(batch)
        .unwrap_or_else(|e| panic!("{what}: {e}"));
    for (i, (got, a)) in first.iter().zip(batch).enumerate() {
        assert_eq!(*got, warshall(a), "{what}: instance {i} vs Warshall");
    }
    let (replay, _) = engine
        .closure_many(batch)
        .unwrap_or_else(|e| panic!("{what} (cached): {e}"));
    assert_eq!(first, replay, "{what}: cached replay changed the results");
}

fn check_all<S>(rng: &mut Rng, batch: &[DenseMatrix<S>], semiring: &str)
where
    S: PathSemiring,
    DenseMatrix<S>: PartialEq + std::fmt::Debug,
{
    let n = batch[0].rows();
    // Linear LPGS at a narrow, a matching, and an oversized width.
    for m in [1usize, 2 + rng.gen_usize(3), 2 * n + 1] {
        let eng = LinearEngine::new(m);
        assert_matches_reference(&eng, batch, &format!("linear m={m} {semiring}"));
    }
    // Coalescing LSGP across the same spread (m > 2n leaves cells idle).
    for m in [1usize, 2 + rng.gen_usize(3), 2 * n + 1] {
        let eng = LsgpEngine::new(m);
        assert_matches_reference(&eng, batch, &format!("lsgp m={m} {semiring}"));
    }
    let s = 1 + rng.gen_usize(3); // 1..=3
    assert_matches_reference(
        &GridEngine::new(s),
        batch,
        &format!("grid s={s} {semiring}"),
    );
    assert_matches_reference(
        &FixedArrayEngine::new(),
        batch,
        &format!("fixed {semiring}"),
    );
    assert_matches_reference(
        &FixedLinearEngine::new(),
        batch,
        &format!("fixed-linear {semiring}"),
    );
}

#[test]
fn all_mappings_agree_with_warshall_and_each_other() {
    Checker::new("all mappings agree with Warshall and each other", 10).run(|rng| {
        let n = 2 + rng.gen_usize(7); // 2..=8
        let len = 1 + rng.gen_usize(3); // 1..=3
        let bools = bool_batch(rng, n, len);
        let weights = weight_batch(rng, n, len);
        check_all(rng, &bools, "Bool");
        check_all(rng, &weights, "MinPlus");
        Ok(())
    });
}

/// The mapping layer's storage dichotomy, cross-checked on random
/// instances: coalescing's measured per-cell buffer grows with `n²/m`
/// while cut-and-pile's per-cell banks stay within one column of words —
/// the paper's reason for preferring cut-and-pile.
#[test]
fn lsgp_buffers_where_lpgs_streams() {
    Checker::new("lsgp buffers where lpgs streams", 8).run(|rng| {
        let n = 6 + rng.gen_usize(7); // 6..=12
        let m = 2 + rng.gen_usize(3); // 2..=4
        let batch = bool_batch(rng, n, 1);

        let lsgp = LsgpEngine::new(m);
        let (_, coalesced) = lsgp.closure_many(&batch).unwrap();
        let lsgp_peak = lsgp.peak_local_words(&coalesced);

        let lpgs = LinearEngine::new(m);
        let (_, piled) = ClosureEngine::<Bool>::closure_many(&lpgs, &batch).unwrap();
        let lpgs_peak = piled
            .bank_peak_resident
            .iter()
            .take(m)
            .copied()
            .max()
            .unwrap_or(0);

        // LSGP holds at least the live column window (Θ(n²/m)); LPGS's
        // private banks never exceed one in-flight column stream.
        assert!(
            lsgp_peak >= n * n.div_ceil(m),
            "n={n} m={m}: lsgp peak {lsgp_peak} below the live window"
        );
        assert!(
            lpgs_peak <= 2 * n,
            "n={n} m={m}: lpgs peak {lpgs_peak} exceeds one column stream"
        );
        Ok(())
    });
}
