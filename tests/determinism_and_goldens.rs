//! Determinism of the simulator and golden-value checks pinning the exact
//! measured numbers of key design points (so regressions in cycle counts
//! are caught, not just correctness).

use systolic::closure::{gnp, DiGraph};
use systolic::partition::{ClosureEngine, FixedArrayEngine, GridEngine, LinearEngine};
use systolic_semiring::{Bool, DenseMatrix};

#[test]
fn simulation_is_deterministic() {
    let a = gnp(13, 0.22, 3).adjacency_matrix();
    for _ in 0..2 {
        let (r1, s1) = ClosureEngine::<Bool>::closure(&LinearEngine::new(4), &a).unwrap();
        let (r2, s2) = ClosureEngine::<Bool>::closure(&LinearEngine::new(4), &a).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(s1, s2, "stats must be bit-identical across runs");
        let (g1, t1) = ClosureEngine::<Bool>::closure(&GridEngine::new(2), &a).unwrap();
        let (g2, t2) = ClosureEngine::<Bool>::closure(&GridEngine::new(2), &a).unwrap();
        assert_eq!(g1, g2);
        assert_eq!(t1, t2);
    }
}

#[test]
fn golden_fixed_array_makespan() {
    // Single-instance makespan of the Fig. 17 array: pinned so the timing
    // model cannot drift silently. Structure-dependent, data-independent.
    let empty = DenseMatrix::<Bool>::zeros(8, 8);
    let dense = {
        let mut m = DenseMatrix::<Bool>::zeros(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                m.set(i, j, i != j);
            }
        }
        m
    };
    let (_, s_empty) = ClosureEngine::<Bool>::closure(&FixedArrayEngine::new(), &empty).unwrap();
    let (_, s_dense) = ClosureEngine::<Bool>::closure(&FixedArrayEngine::new(), &dense).unwrap();
    assert_eq!(
        s_empty.cycles, s_dense.cycles,
        "systolic timing is data-independent"
    );
    // Pinned value for n = 8: the makespan is O(n) — wavefront 2k+g over
    // n(n+1) cells plus per-hop register and rotation slack (DESIGN.md §4).
    assert_eq!(s_empty.cycles, 38);
}

#[test]
fn golden_linear_partitioned_counters() {
    // n = 12, m = 3, one instance: pin all headline counters.
    let a = gnp(12, 0.2, 7).adjacency_matrix();
    let (_, s) = ClosureEngine::<Bool>::closure(&LinearEngine::new(3), &a).unwrap();
    assert_eq!(s.cells, 3);
    assert_eq!(s.useful_ops, 12 * 11 * 10);
    assert_eq!(s.host_words, 144);
    assert_eq!(s.memory_connections, 4);
    assert_eq!(s.output_words, 144);
    assert_eq!(s.max_bank_writes_per_cycle, 1);
    // Ideal is n²(n+1)/m = 624; measured includes fill and boundary sets.
    assert!(s.cycles >= 624, "cycles {}", s.cycles);
    assert!(s.cycles <= 900, "cycles {} drifted", s.cycles);
}

#[test]
fn golden_small_closure_matrix() {
    // Fully pinned end-to-end answer for a hand-checkable graph.
    let mut g = DiGraph::new(5);
    for (u, v) in [(0, 1), (1, 2), (2, 1), (2, 3)] {
        g.add_edge(u, v);
    }
    let (res, _) =
        ClosureEngine::<Bool>::closure(&LinearEngine::new(2), &g.adjacency_matrix()).unwrap();
    let want = [
        [true, true, true, true, false],
        [false, true, true, true, false],
        [false, true, true, true, false],
        [false, false, false, true, false],
        [false, false, false, false, true],
    ];
    for (i, row) in want.iter().enumerate() {
        for (j, &w) in row.iter().enumerate() {
            assert_eq!(*res.get(i, j), w, "({i},{j})");
        }
    }
}

#[test]
fn variable_size_problems_reuse_one_engine() {
    // §1 motivation: "problems of variable size using the same array".
    let eng = LinearEngine::new(3);
    for n in [4usize, 9, 14, 6] {
        let a = gnp(n, 0.3, n as u64).adjacency_matrix();
        let (res, stats) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
        assert_eq!(res, systolic_semiring::warshall(&a), "n={n}");
        assert_eq!(stats.cells, 3);
    }
}
