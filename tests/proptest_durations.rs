//! Property tests for the varying-duration plan transform (§4.3): a plan
//! rewritten with all durations = 1 must be *byte-identical* to the
//! original — same `Debug` rendering, same results, same `RunStats` — for
//! every closure mapping, and a varying-duration plan must replay exactly
//! on a recycled simulator (reset + reload) and change results never,
//! only timing.

use systolic::partition::{
    CompiledPlan, FixedArrayMapping, FixedLinearMapping, GridMapping, LpgsMapping, LsgpMapping,
    Mapping,
};
use systolic_arraysim::RunStats;
use systolic_semiring::{Bool, DenseMatrix};
use systolic_util::{Checker, Rng};

fn bool_batch(rng: &mut Rng, n: usize, len: usize) -> Vec<DenseMatrix<Bool>> {
    (0..len)
        .map(|_| DenseMatrix::from_fn(n, n, |_, _| rng.gen_bool(0.3)))
        .collect()
}

fn run_plan(plan: &CompiledPlan, batch: &[DenseMatrix<Bool>]) -> (Vec<Vec<bool>>, RunStats) {
    let mut sim = plan.instantiate::<Bool>(false);
    plan.load(&mut sim, batch);
    let stats = sim.run().expect("plan runs clean");
    (sim.outputs().to_vec(), stats)
}

/// Every closure mapping's plan, rewritten with the identity duration
/// vector, must be byte-identical: the `Debug` rendering of the plan, the
/// output streams, and the full `RunStats` all match the original.
#[test]
fn unit_durations_are_byte_identical_across_all_mappings() {
    Checker::new("unit durations are the identity on plans", 12).run(|rng| {
        let n = 3 + rng.gen_usize(8);
        let len = 1 + rng.gen_usize(2);
        let batch = bool_batch(rng, n, len);
        let plans: Vec<(String, CompiledPlan)> = vec![
            (
                format!("linear m=3 n={n}"),
                LpgsMapping::new(3).build_plan(n, batch.len()),
            ),
            (
                format!("lsgp m=4 n={n}"),
                LsgpMapping::new(4).build_plan(n, batch.len()),
            ),
            (
                format!("grid s=2 n={n}"),
                GridMapping::new(2).build_plan(n, batch.len()),
            ),
            (
                format!("fixed n={n}"),
                FixedArrayMapping.build_plan(n, batch.len()),
            ),
            (
                format!("fixed-linear n={n}"),
                FixedLinearMapping.build_plan(n, batch.len()),
            ),
        ];
        for (what, plan) in plans {
            let unit = plan.with_row_durations(&vec![1; n]);
            assert_eq!(
                format!("{plan:?}"),
                format!("{unit:?}"),
                "{what}: unit durations must not rewrite the plan"
            );
            let (out_a, stats_a) = run_plan(&plan, &batch);
            let (out_b, stats_b) = run_plan(&unit, &batch);
            assert_eq!(out_a, out_b, "{what}: outputs diverged");
            assert_eq!(stats_a, stats_b, "{what}: stats diverged");
        }
        Ok(())
    });
}

/// Varying durations change timing, never values: a §4.3-profile plan
/// produces the same output streams as the unit plan while costing
/// strictly more cycles, and replaying it on a recycled simulator
/// (reset + reload) reproduces the fresh run bit-for-bit.
#[test]
fn varying_duration_plans_replay_exactly_and_preserve_results() {
    Checker::new("varying durations replay exactly", 8).run(|rng| {
        let n = 3 + rng.gen_usize(6);
        let batch = bool_batch(rng, n, 1);
        // Monotone §4.3-style profile plus a random bump.
        let durs: Vec<u32> = (0..n)
            .map(|k| (n - k) as u32 + rng.gen_usize(3) as u32)
            .collect();
        for (what, plan) in [
            ("linear m=2", LpgsMapping::new(2).build_plan(n, 1)),
            ("grid s=2", GridMapping::new(2).build_plan(n, 1)),
        ] {
            let timed = plan.with_row_durations(&durs);
            let (out_unit, stats_unit) = run_plan(&plan, &batch);
            let (out_fresh, stats_fresh) = run_plan(&timed, &batch);
            assert_eq!(out_unit, out_fresh, "{what}: durations changed the results");
            assert!(
                stats_fresh.cycles > stats_unit.cycles,
                "{what}: durations must cost cycles ({} vs {})",
                stats_fresh.cycles,
                stats_unit.cycles
            );
            // Recycled replay: reset the simulator, reload, run again.
            let mut sim = timed.instantiate::<Bool>(false);
            timed.load(&mut sim, &batch);
            let first = sim.run().expect("first run");
            let first_out = sim.outputs().to_vec();
            sim.reset();
            timed.load(&mut sim, &batch);
            let replay = sim.run().expect("replayed run");
            let replay_out = sim.outputs().to_vec();
            assert_eq!(
                first_out, replay_out,
                "{what}: recycled replay changed outputs"
            );
            assert_eq!(first, replay, "{what}: recycled replay changed stats");
            assert_eq!(
                (out_fresh, stats_fresh),
                (first_out, first),
                "{what}: fresh and recycled sims disagree"
            );
        }
        Ok(())
    });
}
