//! Failure injection: the simulator and engines must *diagnose* broken
//! configurations, not hang or silently corrupt results.

use systolic::arraysim::{ArraySim, SimError, StreamDst, StreamSrc, Task, TaskKind, TaskLabel};
use systolic::partition::{ClosureEngine, EngineError, GridEngine, LinearEngine};
use systolic_semiring::{Bool, DenseMatrix, MinPlus};

fn task(kind: TaskKind, len: usize) -> Task {
    Task {
        kind,
        len,
        col_in: None,
        pivot_in: None,
        col_out: None,
        pivot_out: None,
        head_out: None,
        duration: 1,
        useful_ops: 0,
        label: TaskLabel::default(),
    }
}

#[test]
fn missing_stream_is_reported_as_deadlock() {
    let mut sim = ArraySim::<MinPlus>::new(2);
    let b = sim.add_bank();
    let mut t = task(TaskKind::DelayTail, 3);
    t.pivot_in = Some(StreamSrc::Bank { bank: b, slot: 123 });
    sim.push_task(0, t);
    match sim.run() {
        Err(SimError::Deadlock {
            pending,
            cycle,
            blocked,
        }) => {
            assert_eq!(pending, vec![1, 0]);
            assert!(cycle < 100, "deadlock detected promptly");
            // The diagnostic must name the starved stream endpoint.
            assert!(
                blocked.iter().any(|d| d.contains("cell 0")),
                "blocked diagnostics: {blocked:?}"
            );
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn circular_link_dependency_deadlocks() {
    // Two fuse tasks each waiting on the other's pivot output.
    let mut sim = ArraySim::<Bool>::new(2);
    let b = sim.add_bank();
    let l01 = sim.add_link();
    let l10 = sim.add_link();
    for k in [0usize, 1] {
        for v in [true, false, true] {
            sim.bank_mut(b).preload(k, v);
        }
    }
    let mut t0 = task(TaskKind::Fuse, 3);
    t0.col_in = Some(StreamSrc::Bank { bank: b, slot: 0 });
    t0.pivot_in = Some(StreamSrc::Link(l10));
    t0.pivot_out = Some(StreamDst::Link(l01));
    sim.push_task(0, t0);
    let mut t1 = task(TaskKind::Fuse, 3);
    t1.col_in = Some(StreamSrc::Bank { bank: b, slot: 1 });
    t1.pivot_in = Some(StreamSrc::Link(l01));
    t1.pivot_out = Some(StreamDst::Link(l10));
    sim.push_task(1, t1);
    assert!(matches!(sim.run(), Err(SimError::Deadlock { .. })));
}

#[test]
fn timeout_budget_is_honored() {
    let mut sim = ArraySim::<Bool>::new(1);
    let b = sim.add_bank();
    let mut t = task(TaskKind::Pass, 4);
    t.col_in = Some(StreamSrc::Bank { bank: b, slot: 1 });
    sim.push_task(0, t);
    sim.set_max_cycles(2);
    assert_eq!(sim.run(), Err(SimError::Timeout { max_cycles: 2 }));
}

#[test]
fn engines_reject_bad_shapes() {
    let eng = LinearEngine::new(3);
    // Too small.
    let a = DenseMatrix::<Bool>::zeros(1, 1);
    assert!(matches!(
        ClosureEngine::<Bool>::closure(&eng, &a),
        Err(EngineError::BadInput(_))
    ));
    // Mixed batch sizes.
    let a = DenseMatrix::<Bool>::zeros(3, 3);
    let b = DenseMatrix::<Bool>::zeros(4, 4);
    assert!(matches!(
        ClosureEngine::<Bool>::closure_many(&eng, &[a, b]),
        Err(EngineError::BadInput(_))
    ));
    // Empty batch.
    assert!(matches!(
        ClosureEngine::<Bool>::closure_many(&eng, &[]),
        Err(EngineError::BadInput(_))
    ));
    // Grid with the same constraints.
    let g = GridEngine::new(2);
    let a = DenseMatrix::<Bool>::zeros(0, 0);
    assert!(ClosureEngine::<Bool>::closure(&g, &a).is_err());
}

#[test]
fn engine_error_messages_are_informative() {
    let eng = LinearEngine::new(2);
    let a = DenseMatrix::<Bool>::zeros(1, 1);
    let err = ClosureEngine::<Bool>::closure(&eng, &a).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("n=1"), "{msg}");
    let fmt = format!("{}", SimError::Timeout { max_cycles: 7 });
    assert!(fmt.contains('7'));
}

#[test]
fn pass_through_chain_preserves_order_under_backpressure() {
    // A three-cell pass chain with single-word links: output must preserve
    // stream order even though every link backpressures.
    let mut sim = ArraySim::<MinPlus>::new(3);
    let b = sim.add_bank();
    let l0 = sim.add_link();
    let l1 = sim.add_link();
    let o = sim.add_outputs(1);
    let n = 16;
    for v in 0..n {
        sim.bank_mut(b).preload(0, v as u64);
    }
    let mut t0 = task(TaskKind::Pass, n);
    t0.col_in = Some(StreamSrc::Bank { bank: b, slot: 0 });
    t0.col_out = Some(StreamDst::Link(l0));
    sim.push_task(0, t0);
    let mut t1 = task(TaskKind::Pass, n);
    t1.col_in = Some(StreamSrc::Link(l0));
    t1.col_out = Some(StreamDst::Link(l1));
    sim.push_task(1, t1);
    let mut t2 = task(TaskKind::Pass, n);
    t2.col_in = Some(StreamSrc::Link(l1));
    t2.col_out = Some(StreamDst::Output { stream: o });
    sim.push_task(2, t2);
    let stats = sim.run().unwrap();
    let want: Vec<u64> = (0..n as u64).collect();
    assert_eq!(sim.outputs()[0], want);
    // Pipeline: total ≈ n + chain depth, not 3n.
    assert!(stats.cycles < (n + 8) as u64, "cycles {}", stats.cycles);
}

// ---------------------------------------------------------------------------
// Runtime fault injection: plans, checksum detection, checkpoint recovery.
// ---------------------------------------------------------------------------

use systolic::arraysim::FaultPlan;
use systolic::partition::{
    Escalation, FaultyLinearEngine, RecoveringEngine, RecoveryPolicy, Verifier,
};
use systolic_semiring::{warshall, Semiring};
use systolic_util::Rng;

fn random_bool(n: usize, p: f64, seed: u64) -> DenseMatrix<Bool> {
    let mut rng = Rng::seed_from_u64(seed);
    DenseMatrix::from_fn(n, n, |i, j| i != j && rng.gen_bool(p))
}

fn random_minplus(n: usize, seed: u64) -> DenseMatrix<MinPlus> {
    let mut rng = Rng::seed_from_u64(seed);
    DenseMatrix::from_fn(n, n, |i, j| {
        if i != j && rng.gen_bool(0.25) {
            rng.gen_range_u64(1, 12)
        } else {
            MinPlus::zero()
        }
    })
}

#[test]
fn zero_fault_plan_is_bit_identical_to_uninstrumented_runs() {
    let batch: Vec<_> = (0..4).map(|i| random_bool(9, 0.2, 400 + i)).collect();
    let plain = LinearEngine::new(3);
    let armed = LinearEngine::new(3).with_fault_plan(FaultPlan::none(77));
    let (res_p, stats_p) = ClosureEngine::<Bool>::closure_many(&plain, &batch).unwrap();
    let (res_a, stats_a) = ClosureEngine::<Bool>::closure_many(&armed, &batch).unwrap();
    assert_eq!(res_p, res_a, "inert plan must not change results");
    // RunStats::PartialEq ignores wall time but covers every counter,
    // including the fault report and event log (both must be empty).
    assert_eq!(stats_p, stats_a, "inert plan must not change stats");
    assert!(stats_a.fault.is_empty());
    assert!(stats_a.fault_events.is_empty());
    assert!(armed.recent_fault_events().is_empty());

    // The recovery wrapper over an inert plan returns the same closures
    // with no retries. (Its stats differ structurally: checkpointing runs
    // one instance per attempt instead of pipelining the whole batch.)
    let rec = RecoveringEngine::new(LinearEngine::new(3).with_fault_plan(FaultPlan::none(77)));
    let (res_r, stats_r) = ClosureEngine::<Bool>::closure_many(&rec, &batch).unwrap();
    assert_eq!(res_r, res_p);
    assert!(stats_r.fault.is_empty());
    assert!(rec.outcomes().iter().all(|o| o.attempts == 1));
}

#[test]
fn single_bool_corruptions_are_detected_masked_or_principled_escapes() {
    // One value-corrupting fault per run, then audit the verifier: a run
    // whose result equals the reference must be accepted (no false
    // alarms); a diverging result must either be rejected (detected) or
    // be the documented blind spot — a transitively closed superset of
    // the true closure, i.e. the exact closure of a larger input.
    let (mut fired, mut detected, mut masked, mut escaped) = (0, 0, 0, 0);
    for seed in 0..120u64 {
        let a = random_bool(10, 0.12, 900 + seed);
        let reference = warshall(&a);
        let mut plan = FaultPlan::none(7 * seed + 1).with_max_faults(1);
        plan.emit_corrupt = 4e-3;
        plan.bank_flip = 4e-3;
        let eng = LinearEngine::new(3).with_fault_plan(plan);
        let (res, _) = ClosureEngine::<Bool>::closure(&eng, &a).unwrap();
        let events = eng.recent_fault_events();
        assert!(events.len() <= 1, "max_faults cap violated");
        if events.is_empty() {
            continue;
        }
        assert!(events[0].kind.is_value_corrupting());
        fired += 1;
        let verdict = Verifier::full().verify(0, &a, &res);
        if res == reference {
            assert_eq!(verdict, Ok(()), "false alarm on an exact result");
            masked += 1;
        } else if verdict.is_err() {
            detected += 1;
        } else {
            assert_eq!(warshall(&res), res, "escape must be transitively closed");
            for i in 0..10 {
                for j in 0..10 {
                    assert!(
                        !*reference.get(i, j) || *res.get(i, j),
                        "escape must contain the true closure"
                    );
                }
            }
            escaped += 1;
        }
    }
    assert!(fired >= 40, "only {fired}/120 runs injected a fault");
    assert!(detected > 0, "no corruption was ever detected");
    // Density 0.12 at n = 10 is cycle-rich — the verifier's hardest case,
    // where self-witnessing phantom closures are most likely. Every escape
    // above was individually proven to be that exact shape; the ≥95%
    // coverage claim holds at the sparser E22 operating point, while here
    // we only require a solid majority.
    assert!(
        4 * detected >= 3 * (detected + escaped),
        "coverage below 75%: {detected} detected, {escaped} escaped, {masked} masked"
    );
}

#[test]
fn single_minplus_corruptions_are_detected_masked_or_principled_escapes() {
    let (mut fired, mut detected, mut escaped) = (0, 0, 0);
    for seed in 0..80u64 {
        let a = random_minplus(8, 500 + seed);
        let reference = warshall(&a);
        let mut plan = FaultPlan::none(13 * seed + 5).with_max_faults(1);
        plan.emit_corrupt = 4e-3;
        plan.bank_flip = 4e-3;
        let eng = LinearEngine::new(2).with_fault_plan(plan);
        let (res, _) = ClosureEngine::<MinPlus>::closure(&eng, &a).unwrap();
        if eng.recent_fault_events().is_empty() {
            continue;
        }
        fired += 1;
        let verdict = Verifier::full().verify(0, &a, &res);
        if res == reference {
            assert_eq!(verdict, Ok(()), "false alarm on an exact result");
        } else if verdict.is_err() {
            detected += 1;
        } else {
            // Blind spot, min-plus shape: a self-consistent set of
            // shortcuts — still a closure, and it only improves distances.
            assert_eq!(warshall(&res), res, "escape must be a closure");
            for i in 0..8 {
                for j in 0..8 {
                    let r = res.get(i, j);
                    assert_eq!(
                        MinPlus::add(reference.get(i, j), r),
                        *r,
                        "escape may only shorten distances"
                    );
                }
            }
            escaped += 1;
        }
    }
    assert!(fired >= 25, "only {fired}/80 runs injected a fault");
    assert!(detected > 0, "no corruption was ever detected");
    assert!(
        20 * detected >= 19 * (detected + escaped),
        "coverage below 95%: {detected} detected, {escaped} escaped"
    );
}

#[test]
fn recovering_engine_over_degraded_array_stays_exact() {
    // A bypass-degraded array with live transient faults, wrapped in the
    // recovery layer: every accepted closure must be exact. Seeds are
    // pinned, so the retry/escalation trace is reproducible.
    let inner = FaultyLinearEngine::new(5, &[1, 3])
        .unwrap()
        .with_fault_plan(FaultPlan::transients(31, 2e-4));
    let eng = RecoveringEngine::new(inner).with_policy(RecoveryPolicy {
        max_retries: 8,
        escalation: Escalation::Bypass,
    });
    let batch: Vec<_> = (0..12).map(|i| random_bool(8, 0.15, 600 + i)).collect();
    let (res, stats) = ClosureEngine::<Bool>::closure_many(&eng, &batch).unwrap();
    for (a, r) in batch.iter().zip(&res) {
        assert_eq!(*r, warshall(a), "degraded + faulty run must stay exact");
    }
    // The faults actually fired and at least one retry happened at this
    // seed; the report is reproducible run-over-run.
    assert!(stats.fault.injected > 0, "no fault fired: weak test");
    let eng2 = RecoveringEngine::new(
        FaultyLinearEngine::new(5, &[1, 3])
            .unwrap()
            .with_fault_plan(FaultPlan::transients(31, 2e-4)),
    )
    .with_policy(RecoveryPolicy {
        max_retries: 8,
        escalation: Escalation::Bypass,
    });
    let (res2, stats2) = ClosureEngine::<Bool>::closure_many(&eng2, &batch).unwrap();
    assert_eq!(res, res2);
    assert_eq!(stats.fault, stats2.fault);
    assert_eq!(stats, stats2);
}
