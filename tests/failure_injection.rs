//! Failure injection: the simulator and engines must *diagnose* broken
//! configurations, not hang or silently corrupt results.

use systolic::arraysim::{ArraySim, SimError, StreamDst, StreamSrc, Task, TaskKind, TaskLabel};
use systolic::partition::{ClosureEngine, EngineError, GridEngine, LinearEngine};
use systolic_semiring::{Bool, DenseMatrix, MinPlus};

fn task(kind: TaskKind, len: usize) -> Task {
    Task {
        kind,
        len,
        col_in: None,
        pivot_in: None,
        col_out: None,
        pivot_out: None,
        useful_ops: 0,
        label: TaskLabel::default(),
    }
}

#[test]
fn missing_stream_is_reported_as_deadlock() {
    let mut sim = ArraySim::<MinPlus>::new(2);
    let b = sim.add_bank();
    let mut t = task(TaskKind::DelayTail, 3);
    t.pivot_in = Some(StreamSrc::Bank { bank: b, key: 123 });
    sim.push_task(0, t);
    match sim.run() {
        Err(SimError::Deadlock {
            pending,
            cycle,
            blocked,
        }) => {
            assert_eq!(pending, vec![1, 0]);
            assert!(cycle < 100, "deadlock detected promptly");
            // The diagnostic must name the starved stream endpoint.
            assert!(
                blocked.iter().any(|d| d.contains("cell 0")),
                "blocked diagnostics: {blocked:?}"
            );
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn circular_link_dependency_deadlocks() {
    // Two fuse tasks each waiting on the other's pivot output.
    let mut sim = ArraySim::<Bool>::new(2);
    let b = sim.add_bank();
    let l01 = sim.add_link();
    let l10 = sim.add_link();
    for k in [0u64, 1] {
        for v in [true, false, true] {
            sim.bank_mut(b).preload(k, v);
        }
    }
    let mut t0 = task(TaskKind::Fuse, 3);
    t0.col_in = Some(StreamSrc::Bank { bank: b, key: 0 });
    t0.pivot_in = Some(StreamSrc::Link(l10));
    t0.pivot_out = Some(StreamDst::Link(l01));
    sim.push_task(0, t0);
    let mut t1 = task(TaskKind::Fuse, 3);
    t1.col_in = Some(StreamSrc::Bank { bank: b, key: 1 });
    t1.pivot_in = Some(StreamSrc::Link(l01));
    t1.pivot_out = Some(StreamDst::Link(l10));
    sim.push_task(1, t1);
    assert!(matches!(sim.run(), Err(SimError::Deadlock { .. })));
}

#[test]
fn timeout_budget_is_honored() {
    let mut sim = ArraySim::<Bool>::new(1);
    let b = sim.add_bank();
    let mut t = task(TaskKind::Pass, 4);
    t.col_in = Some(StreamSrc::Bank { bank: b, key: 1 });
    sim.push_task(0, t);
    sim.set_max_cycles(2);
    assert_eq!(sim.run(), Err(SimError::Timeout { max_cycles: 2 }));
}

#[test]
fn engines_reject_bad_shapes() {
    let eng = LinearEngine::new(3);
    // Too small.
    let a = DenseMatrix::<Bool>::zeros(1, 1);
    assert!(matches!(
        ClosureEngine::<Bool>::closure(&eng, &a),
        Err(EngineError::BadInput(_))
    ));
    // Mixed batch sizes.
    let a = DenseMatrix::<Bool>::zeros(3, 3);
    let b = DenseMatrix::<Bool>::zeros(4, 4);
    assert!(matches!(
        ClosureEngine::<Bool>::closure_many(&eng, &[a, b]),
        Err(EngineError::BadInput(_))
    ));
    // Empty batch.
    assert!(matches!(
        ClosureEngine::<Bool>::closure_many(&eng, &[]),
        Err(EngineError::BadInput(_))
    ));
    // Grid with the same constraints.
    let g = GridEngine::new(2);
    let a = DenseMatrix::<Bool>::zeros(0, 0);
    assert!(ClosureEngine::<Bool>::closure(&g, &a).is_err());
}

#[test]
fn engine_error_messages_are_informative() {
    let eng = LinearEngine::new(2);
    let a = DenseMatrix::<Bool>::zeros(1, 1);
    let err = ClosureEngine::<Bool>::closure(&eng, &a).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("n=1"), "{msg}");
    let fmt = format!("{}", SimError::Timeout { max_cycles: 7 });
    assert!(fmt.contains('7'));
}

#[test]
fn pass_through_chain_preserves_order_under_backpressure() {
    // A three-cell pass chain with single-word links: output must preserve
    // stream order even though every link backpressures.
    let mut sim = ArraySim::<MinPlus>::new(3);
    let b = sim.add_bank();
    let l0 = sim.add_link();
    let l1 = sim.add_link();
    let o = sim.add_outputs(1);
    let n = 16;
    for v in 0..n {
        sim.bank_mut(b).preload(0, v as u64);
    }
    let mut t0 = task(TaskKind::Pass, n);
    t0.col_in = Some(StreamSrc::Bank { bank: b, key: 0 });
    t0.col_out = Some(StreamDst::Link(l0));
    sim.push_task(0, t0);
    let mut t1 = task(TaskKind::Pass, n);
    t1.col_in = Some(StreamSrc::Link(l0));
    t1.col_out = Some(StreamDst::Link(l1));
    sim.push_task(1, t1);
    let mut t2 = task(TaskKind::Pass, n);
    t2.col_in = Some(StreamSrc::Link(l1));
    t2.col_out = Some(StreamDst::Output { stream: o });
    sim.push_task(2, t2);
    let stats = sim.run().unwrap();
    let want: Vec<u64> = (0..n as u64).collect();
    assert_eq!(sim.outputs()[0], want);
    // Pipeline: total ≈ n + chain depth, not 3n.
    assert!(stats.cycles < (n + 8) as u64, "cycles {}", stats.cycles);
}
