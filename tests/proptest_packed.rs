//! Property-based equivalence of the lane-packed Boolean engine.
//!
//! `PackedEngine` must be indistinguishable from the scalar `LinearEngine`
//! under `PartialEq`: identical closure results, and merged `RunStats`
//! equal to the instance-order merge of the per-instance scalar runs (the
//! same lane/thread-count-invariant contract `ParallelEngine` keeps; wall
//! time is excluded from equality as always). Batch sizes straddle the
//! 64-lane group boundary on both sides, including a partial last group.

use systolic::partition::{ClosureEngine, LinearEngine, PackedEngine, ParallelEngine};
use systolic_arraysim::RunStats;
use systolic_semiring::{warshall, Bool, DenseMatrix};
use systolic_util::{Checker, Rng};

/// The boundary-straddling batch sizes the lane grouping must survive:
/// single instance, one-short group, exact group, one-over, and a large
/// batch whose last group is partial.
const BATCH_SIZES: [usize; 5] = [1, 63, 64, 65, 130];

fn random_batch(rng: &mut Rng, len: usize, n: usize) -> Vec<DenseMatrix<Bool>> {
    (0..len)
        .map(|_| DenseMatrix::from_fn(n, n, |i, j| i != j && rng.gen_bool(0.25)))
        .collect()
}

/// Instance-order merge of per-instance scalar runs — the stats contract.
fn per_instance_merge(
    engine: &LinearEngine,
    batch: &[DenseMatrix<Bool>],
) -> (Vec<DenseMatrix<Bool>>, RunStats) {
    let mut results = Vec::with_capacity(batch.len());
    let mut merged: Option<RunStats> = None;
    for a in batch {
        let (c, s) = engine.closure(a).unwrap();
        results.push(c);
        match &mut merged {
            None => merged = Some(s),
            Some(acc) => acc.merge(&s),
        }
    }
    (results, merged.unwrap())
}

#[test]
fn packed_engine_is_bit_identical_to_linear() {
    Checker::new("packed engine bit-identical to linear", 3).run(|rng| {
        let n = 2 + rng.gen_usize(5); // 2..=6
        let m = 1 + rng.gen_usize(4); // 1..=4
        let scalar = LinearEngine::new(m);
        let packed = PackedEngine::new(m);
        for len in BATCH_SIZES {
            let batch = random_batch(rng, len, n);
            let (want, want_stats) = per_instance_merge(&scalar, &batch);
            let (got, got_stats) = packed.closure_many(&batch).unwrap();
            assert_eq!(got, want, "results n={n} m={m} len={len}");
            assert_eq!(got_stats, want_stats, "stats n={n} m={m} len={len}");
            // And both agree with the software reference.
            assert_eq!(got[len - 1], warshall(&batch[len - 1]));
        }
        Ok(())
    });
}

#[test]
fn packed_engine_matches_chained_closure_many_results() {
    Checker::new("packed matches chained batch results", 3).run(|rng| {
        let n = 2 + rng.gen_usize(4); // 2..=5
        let scalar = LinearEngine::new(3);
        let packed = PackedEngine::new(3);
        // The scalar engine chains the whole batch through one array; the
        // packed engine runs lane groups. Same results either way.
        let batch = random_batch(rng, 65, n);
        let (want, _) = ClosureEngine::<Bool>::closure_many(&scalar, &batch).unwrap();
        let (got, _) = packed.closure_many(&batch).unwrap();
        assert_eq!(got, want);
        Ok(())
    });
}

#[test]
fn parallel_engine_shards_packed_batches_in_lane_groups() {
    Checker::new("parallel over packed is invariant", 2).run(|rng| {
        let n = 2 + rng.gen_usize(4); // 2..=5
        let serial = PackedEngine::new(2);
        let batch = random_batch(rng, 130, n);
        let (want, want_stats) = serial.closure_many(&batch).unwrap();
        for threads in [1, 2, 3] {
            let par = ParallelEngine::new(PackedEngine::new(2), threads);
            assert_eq!(par.inner().preferred_chunk(), 64);
            let (got, got_stats) = par.closure_many(&batch).unwrap();
            assert_eq!(got, want, "threads={threads}");
            // Chunk-order merge of lane-group stats == serial packed merge.
            assert_eq!(got_stats, want_stats, "threads={threads}");
        }
        Ok(())
    });
}

#[test]
fn single_instance_packed_run_equals_scalar_run_exactly() {
    Checker::new("one-lane packed equals scalar", 4).run(|rng| {
        let n = 2 + rng.gen_usize(6); // 2..=7
        let m = 1 + rng.gen_usize(3);
        let batch = random_batch(rng, 1, n);
        let scalar = LinearEngine::new(m);
        let packed = PackedEngine::new(m);
        let (want, want_stats) = scalar.closure(&batch[0]).unwrap();
        let (got, got_stats) = packed.closure_many(&batch).unwrap();
        // A 1-instance group is the 1-lane instantiation: scaling by 1 is
        // the identity, so even the unscaled counters must already match.
        assert_eq!(got[0], want);
        assert_eq!(got_stats, want_stats);
        Ok(())
    });
}
