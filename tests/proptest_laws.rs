//! Property-based semiring law checking over the full element domains.

use systolic_semiring::laws::{check_path_laws, check_semiring_laws};
use systolic_semiring::{Bool, MaxMin, MinMax, MinPlus};
use systolic_util::Checker;

#[test]
fn bool_laws() {
    Checker::new("bool laws", 512).run(|rng| {
        let (a, b, c) = (
            rng.next_u64() & 1 == 1,
            rng.next_u64() & 1 == 1,
            rng.next_u64() & 1 == 1,
        );
        check_semiring_laws::<Bool>(&a, &b, &c).map_err(|e| e.to_string())?;
        check_path_laws::<Bool>(&a).map_err(|e| e.to_string())
    });
}

#[test]
fn minplus_laws() {
    Checker::new("min-plus laws", 512).run(|rng| {
        let (a, b, c) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        check_semiring_laws::<MinPlus>(&a, &b, &c).map_err(|e| e.to_string())?;
        check_path_laws::<MinPlus>(&a).map_err(|e| e.to_string())
    });
}

#[test]
fn maxmin_laws() {
    Checker::new("max-min laws", 512).run(|rng| {
        let (a, b, c) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        check_semiring_laws::<MaxMin>(&a, &b, &c).map_err(|e| e.to_string())?;
        check_path_laws::<MaxMin>(&a).map_err(|e| e.to_string())
    });
}

#[test]
fn minmax_laws() {
    Checker::new("min-max laws", 512).run(|rng| {
        let (a, b, c) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        check_semiring_laws::<MinMax>(&a, &b, &c).map_err(|e| e.to_string())?;
        check_path_laws::<MinMax>(&a).map_err(|e| e.to_string())
    });
}

// Saturating counting arithmetic satisfies the laws away from the
// saturation boundary; constrain the domain accordingly.
#[test]
fn counting_laws_in_safe_domain() {
    use systolic_semiring::Counting;
    Checker::new("counting laws (safe domain)", 512).run(|rng| {
        let bound = (1 << 20) - 1;
        let (a, b, c) = (
            rng.gen_range_u64(0, bound),
            rng.gen_range_u64(0, bound),
            rng.gen_range_u64(0, bound),
        );
        check_semiring_laws::<Counting>(&a, &b, &c).map_err(|e| e.to_string())
    });
}
