//! Property-based semiring law checking over the full element domains.

use proptest::prelude::*;
use systolic_semiring::laws::{check_path_laws, check_semiring_laws};
use systolic_semiring::{Bool, MaxMin, MinMax, MinPlus};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn bool_laws(a: bool, b: bool, c: bool) {
        check_semiring_laws::<Bool>(&a, &b, &c).unwrap();
        check_path_laws::<Bool>(&a).unwrap();
    }

    #[test]
    fn minplus_laws(a: u64, b: u64, c: u64) {
        check_semiring_laws::<MinPlus>(&a, &b, &c).unwrap();
        check_path_laws::<MinPlus>(&a).unwrap();
    }

    #[test]
    fn maxmin_laws(a: u64, b: u64, c: u64) {
        check_semiring_laws::<MaxMin>(&a, &b, &c).unwrap();
        check_path_laws::<MaxMin>(&a).unwrap();
    }

    #[test]
    fn minmax_laws(a: u64, b: u64, c: u64) {
        check_semiring_laws::<MinMax>(&a, &b, &c).unwrap();
        check_path_laws::<MinMax>(&a).unwrap();
    }

    // Saturating counting arithmetic satisfies the laws away from the
    // saturation boundary; constrain the domain accordingly.
    #[test]
    fn counting_laws_in_safe_domain(a in 0u64..1 << 20, b in 0u64..1 << 20, c in 0u64..1 << 20) {
        use systolic_semiring::Counting;
        check_semiring_laws::<Counting>(&a, &b, &c).unwrap();
    }
}
