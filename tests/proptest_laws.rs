//! Property-based semiring law checking over the full element domains.

use systolic_semiring::laws::{check_path_laws, check_semiring_laws};
use systolic_semiring::{Bool, BoolLanes, LaneWord, MaxMin, MinMax, MinPlus};
use systolic_util::Checker;

#[test]
fn bool_laws() {
    Checker::new("bool laws", 512).run(|rng| {
        let (a, b, c) = (
            rng.next_u64() & 1 == 1,
            rng.next_u64() & 1 == 1,
            rng.next_u64() & 1 == 1,
        );
        check_semiring_laws::<Bool>(&a, &b, &c).map_err(|e| e.to_string())?;
        check_path_laws::<Bool>(&a).map_err(|e| e.to_string())
    });
}

#[test]
fn minplus_laws() {
    Checker::new("min-plus laws", 512).run(|rng| {
        let (a, b, c) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        check_semiring_laws::<MinPlus>(&a, &b, &c).map_err(|e| e.to_string())?;
        check_path_laws::<MinPlus>(&a).map_err(|e| e.to_string())
    });
}

#[test]
fn maxmin_laws() {
    Checker::new("max-min laws", 512).run(|rng| {
        let (a, b, c) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        check_semiring_laws::<MaxMin>(&a, &b, &c).map_err(|e| e.to_string())?;
        check_path_laws::<MaxMin>(&a).map_err(|e| e.to_string())
    });
}

#[test]
fn minmax_laws() {
    Checker::new("min-max laws", 512).run(|rng| {
        let (a, b, c) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        check_semiring_laws::<MinMax>(&a, &b, &c).map_err(|e| e.to_string())?;
        check_path_laws::<MinMax>(&a).map_err(|e| e.to_string())
    });
}

// Saturating counting arithmetic satisfies the laws away from the
// saturation boundary; constrain the domain accordingly.
#[test]
fn counting_laws_in_safe_domain() {
    use systolic_semiring::Counting;
    Checker::new("counting laws (safe domain)", 512).run(|rng| {
        let bound = (1 << 20) - 1;
        let (a, b, c) = (
            rng.gen_range_u64(0, bound),
            rng.gen_range_u64(0, bound),
            rng.gen_range_u64(0, bound),
        );
        check_semiring_laws::<Counting>(&a, &b, &c).map_err(|e| e.to_string())
    });
}

// The lane planes are semirings over whole lane words: 64·W Boolean
// lanes per element for BoolLanes<W>, and 8/4 saturating tropical lanes
// for the SWAR planes. The laws must hold wordwise on arbitrary words.

fn lane_word<const W: usize>(rng: &mut systolic_util::Rng) -> LaneWord<W> {
    let mut words = [0u64; W];
    for w in &mut words {
        *w = rng.next_u64();
    }
    LaneWord::from_words(words)
}

#[test]
fn wide_boolean_lane_laws() {
    Checker::new("128-lane boolean laws", 256).run(|rng| {
        let (a, b, c) = (
            lane_word::<2>(rng),
            lane_word::<2>(rng),
            lane_word::<2>(rng),
        );
        check_semiring_laws::<BoolLanes<2>>(&a, &b, &c).map_err(|e| e.to_string())?;
        check_path_laws::<BoolLanes<2>>(&a).map_err(|e| e.to_string())
    });
    Checker::new("256-lane boolean laws", 256).run(|rng| {
        let (a, b, c) = (
            lane_word::<4>(rng),
            lane_word::<4>(rng),
            lane_word::<4>(rng),
        );
        check_semiring_laws::<BoolLanes<4>>(&a, &b, &c).map_err(|e| e.to_string())?;
        check_path_laws::<BoolLanes<4>>(&a).map_err(|e| e.to_string())
    });
}

#[test]
fn swar_tropical_lane_laws() {
    use systolic_semiring::{MinPlusSwar16, MinPlusSwar8, Semiring};
    Checker::new("8×u8 swar min-plus laws", 256).run(|rng| {
        let (a, b, c) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        check_semiring_laws::<MinPlusSwar8>(&a, &b, &c).map_err(|e| e.to_string())?;
        check_path_laws::<MinPlusSwar8>(&a).map_err(|e| e.to_string())?;
        // Saturation at the lane ∞ (0xFF per u8 lane): ⊗ must stick
        // there and ∞ must stay the ⊕ identity, lane by lane.
        let inf = MinPlusSwar8::zero();
        check_semiring_laws::<MinPlusSwar8>(&inf, &a, &b).map_err(|e| e.to_string())?;
        check_path_laws::<MinPlusSwar8>(&inf).map_err(|e| e.to_string())
    });
    Checker::new("4×u16 swar min-plus laws", 256).run(|rng| {
        let (a, b, c) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        check_semiring_laws::<MinPlusSwar16>(&a, &b, &c).map_err(|e| e.to_string())?;
        check_path_laws::<MinPlusSwar16>(&a).map_err(|e| e.to_string())?;
        let inf = MinPlusSwar16::zero();
        check_semiring_laws::<MinPlusSwar16>(&inf, &a, &b).map_err(|e| e.to_string())?;
        check_path_laws::<MinPlusSwar16>(&inf).map_err(|e| e.to_string())
    });
}
