//! Property-based correctness: random problems through every layer.

use systolic::partition::{ClosureEngine, GridEngine, LinearEngine};
use systolic::transform::GGraph;
use systolic_semiring::{
    closure_by_squaring, reflexive, warshall, warshall_blocked, BitMatrix, Bool, DenseMatrix,
    MaxMin, MinPlus,
};
use systolic_util::{Checker, Rng};

fn bool_matrix(rng: &mut Rng, max_n: usize) -> DenseMatrix<Bool> {
    let n = 2 + rng.gen_usize(max_n - 1); // 2..=max_n
    DenseMatrix::from_fn(n, n, |_, _| rng.gen_bool(0.25))
}

fn weight_matrix(rng: &mut Rng, max_n: usize) -> DenseMatrix<MinPlus> {
    let n = 2 + rng.gen_usize(max_n - 1);
    DenseMatrix::from_fn(n, n, |_, _| {
        if rng.gen_bool(0.4) {
            u64::MAX
        } else {
            rng.gen_range_u64(1, 99)
        }
    })
}

#[test]
fn software_kernels_agree() {
    Checker::new("software kernels agree", 24).run(|rng| {
        let a = bool_matrix(rng, 12);
        let w = warshall(&a);
        assert_eq!(w, closure_by_squaring(&a));
        assert_eq!(w, warshall_blocked(&a, 3));
        let bits = BitMatrix::from_dense(&a).transitive_closure();
        assert_eq!(BitMatrix::from_dense(&w), bits);
        Ok(())
    });
}

#[test]
fn blocked_warshall_handles_non_dividing_tiles() {
    Checker::new("blocked warshall non-dividing tiles", 24).run(|rng| {
        let a = bool_matrix(rng, 13);
        let n = a.rows();
        let want = warshall(&a);
        // Every tile size that does NOT divide n, including b > n (one
        // ragged tile covering everything) — the ragged boundary tiles are
        // the case the divisible-b tests never reach.
        for b in (1..=n + 2).filter(|&b| !n.is_multiple_of(b)) {
            assert_eq!(warshall_blocked(&a, b), want, "n={n} b={b}");
        }
        // And a weighted semiring through the same ragged tiling.
        let d = weight_matrix(rng, 11);
        let m = d.rows();
        for b in (2..=m + 1).filter(|&b| !m.is_multiple_of(b)) {
            assert_eq!(warshall_blocked(&d, b), warshall(&d), "minplus m={m} b={b}");
        }
        Ok(())
    });
}

#[test]
fn ggraph_stream_semantics_equal_warshall() {
    Checker::new("G-graph eval equals Warshall", 24).run(|rng| {
        let a = bool_matrix(rng, 12);
        let got = GGraph::new(a.rows()).eval::<Bool>(&reflexive(&a));
        assert_eq!(got, warshall(&a));
        Ok(())
    });
}

#[test]
fn closure_is_monotone_and_idempotent() {
    Checker::new("closure monotone and idempotent", 24).run(|rng| {
        let a = bool_matrix(rng, 10);
        let c = warshall(&a);
        let n = a.rows();
        for i in 0..n {
            for j in 0..n {
                if *a.get(i, j) {
                    assert!(*c.get(i, j), "A ≤ A⁺ at ({i},{j})");
                }
            }
            assert!(*c.get(i, i), "reflexive diagonal");
        }
        assert_eq!(warshall(&c), c);
        Ok(())
    });
}

#[test]
fn minplus_closure_satisfies_triangle_inequality() {
    Checker::new("min-plus triangle inequality", 24).run(|rng| {
        let d = weight_matrix(rng, 10);
        let c = warshall(&d);
        let n = d.rows();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let via = c.get(i, k).saturating_add(*c.get(k, j));
                    assert!(*c.get(i, j) <= via, "({i},{j}) via {k}");
                }
            }
        }
        Ok(())
    });
}

#[test]
fn transformation_stages_preserve_semantics() {
    Checker::new("transformation stages preserve semantics", 12).run(|rng| {
        use systolic::dgraph::eval_closure_graph;
        use systolic::transform::{pipelined, regular, unidirectional};
        let a = bool_matrix(rng, 9);
        let n = a.rows();
        let want = warshall(&a);
        let ar = reflexive(&a);
        for g in [pipelined(n), unidirectional(n), regular(n)] {
            assert_eq!(eval_closure_graph::<Bool>(&g, &ar).unwrap(), want);
        }
        Ok(())
    });
}

#[test]
fn blocked_baselines_match() {
    Checker::new("blocked baselines match", 12).run(|rng| {
        use systolic::baselines::nunez_closure;
        let a = bool_matrix(rng, 10);
        let b = 1 + rng.gen_usize(5); // 1..=5
        assert_eq!(nunez_closure(&a, b), warshall(&a));
        Ok(())
    });
}

// Simulation-backed cases are heavier; fewer cases, smaller n.

#[test]
fn linear_engine_matches_reference() {
    Checker::new("linear engine matches reference", 8).run(|rng| {
        let a = bool_matrix(rng, 9);
        let m = 1 + rng.gen_usize(5); // 1..=5
        let (got, stats) = LinearEngine::new(m).closure(&a).unwrap();
        assert_eq!(got, warshall(&a));
        assert_eq!(stats.memory_connections, m + 1);
        Ok(())
    });
}

#[test]
fn grid_engine_matches_reference() {
    Checker::new("grid engine matches reference", 8).run(|rng| {
        let a = bool_matrix(rng, 9);
        let s = 1 + rng.gen_usize(3); // 1..=3
        let (got, stats) = GridEngine::new(s).closure(&a).unwrap();
        assert_eq!(got, warshall(&a));
        assert_eq!(stats.memory_connections, 2 * s);
        Ok(())
    });
}

#[test]
fn degraded_arrays_stay_exact() {
    Checker::new("degraded arrays stay exact", 8).run(|rng| {
        use systolic::partition::FaultyLinearEngine;
        let a = bool_matrix(rng, 8);
        let physical = 3 + rng.gen_usize(4); // 3..=6
        let fault_bits = rng.next_u64() & 0x3f;
        let faults: Vec<usize> = (0..physical)
            .filter(|c| fault_bits & (1 << c) != 0)
            .collect();
        if faults.len() == physical {
            return Ok(()); // all cells faulty: nothing to run on
        }
        let eng = FaultyLinearEngine::new(physical, &faults).unwrap();
        let (got, stats) = eng.closure(&a).unwrap();
        assert_eq!(got, warshall(&a));
        assert_eq!(stats.cells, physical - faults.len());
        Ok(())
    });
}

#[test]
fn engines_agree_over_maxmin() {
    Checker::new("engines agree over max-min", 8).run(|rng| {
        let n = 3 + rng.gen_usize(5); // 3..=7
        let a = DenseMatrix::<MaxMin>::from_fn(n, n, |i, j| {
            if i != j && rng.gen_bool(0.4) {
                rng.gen_range_u64(1, 49)
            } else {
                0
            }
        });
        let want = warshall(&a);
        let (lin, _) = LinearEngine::new(2).closure(&a).unwrap();
        let (grd, _) = GridEngine::new(2).closure(&a).unwrap();
        assert_eq!(lin, want);
        assert_eq!(grd, want);
        Ok(())
    });
}
