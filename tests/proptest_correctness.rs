//! Property-based correctness: random problems through every layer.

use proptest::prelude::*;
use systolic::partition::{ClosureEngine, GridEngine, LinearEngine};
use systolic::transform::GGraph;
use systolic_semiring::{
    closure_by_squaring, reflexive, warshall, warshall_blocked, BitMatrix, Bool, DenseMatrix,
    MaxMin, MinPlus,
};

fn arb_bool_matrix(max_n: usize) -> impl Strategy<Value = DenseMatrix<Bool>> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(proptest::bool::weighted(0.25), n * n)
            .prop_map(move |v| DenseMatrix::from_vec(n, n, v))
    })
}

fn arb_weight_matrix(max_n: usize) -> impl Strategy<Value = DenseMatrix<MinPlus>> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(prop_oneof![4 => Just(u64::MAX), 6 => 1u64..100], n * n)
            .prop_map(move |v| DenseMatrix::from_vec(n, n, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn software_kernels_agree(a in arb_bool_matrix(12)) {
        let w = warshall(&a);
        prop_assert_eq!(&w, &closure_by_squaring(&a));
        prop_assert_eq!(&w, &warshall_blocked(&a, 3));
        let bits = BitMatrix::from_dense(&a).transitive_closure();
        prop_assert_eq!(BitMatrix::from_dense(&w), bits);
    }

    #[test]
    fn ggraph_stream_semantics_equal_warshall(a in arb_bool_matrix(12)) {
        let got = GGraph::new(a.rows()).eval::<Bool>(&reflexive(&a));
        prop_assert_eq!(got, warshall(&a));
    }

    #[test]
    fn closure_is_monotone_and_idempotent(a in arb_bool_matrix(10)) {
        let c = warshall(&a);
        let n = a.rows();
        for i in 0..n {
            for j in 0..n {
                if *a.get(i, j) {
                    prop_assert!(*c.get(i, j), "A ≤ A⁺ at ({i},{j})");
                }
            }
            prop_assert!(*c.get(i, i), "reflexive diagonal");
        }
        prop_assert_eq!(warshall(&c), c);
    }

    #[test]
    fn minplus_closure_satisfies_triangle_inequality(d in arb_weight_matrix(10)) {
        let c = warshall(&d);
        let n = d.rows();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let via = c.get(i, k).saturating_add(*c.get(k, j));
                    prop_assert!(*c.get(i, j) <= via, "({i},{j}) via {k}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn transformation_stages_preserve_semantics(a in arb_bool_matrix(9)) {
        use systolic::transform::{pipelined, regular, unidirectional};
        use systolic::dgraph::eval_closure_graph;
        let n = a.rows();
        let want = warshall(&a);
        let ar = reflexive(&a);
        for g in [pipelined(n), unidirectional(n), regular(n)] {
            prop_assert_eq!(eval_closure_graph::<Bool>(&g, &ar).unwrap(), want.clone());
        }
    }

    #[test]
    fn blocked_baselines_match(a in arb_bool_matrix(10), b in 1usize..6) {
        use systolic::baselines::nunez_closure;
        prop_assert_eq!(nunez_closure(&a, b), warshall(&a));
    }
}

proptest! {
    // Simulation-backed cases are heavier; fewer cases, smaller n.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn linear_engine_matches_reference(
        a in arb_bool_matrix(9),
        m in 1usize..6,
    ) {
        let (got, stats) = LinearEngine::new(m).closure(&a).unwrap();
        prop_assert_eq!(got, warshall(&a));
        prop_assert_eq!(stats.memory_connections, m + 1);
    }

    #[test]
    fn grid_engine_matches_reference(
        a in arb_bool_matrix(9),
        s in 1usize..4,
    ) {
        let (got, stats) = GridEngine::new(s).closure(&a).unwrap();
        prop_assert_eq!(got, warshall(&a));
        prop_assert_eq!(stats.memory_connections, 2 * s);
    }

    #[test]
    fn degraded_arrays_stay_exact(
        a in arb_bool_matrix(8),
        physical in 3usize..7,
        fault_bits in 0u32..64,
    ) {
        use systolic::partition::FaultyLinearEngine;
        let faults: Vec<usize> = (0..physical)
            .filter(|c| fault_bits & (1 << c) != 0)
            .collect();
        prop_assume!(faults.len() < physical);
        let eng = FaultyLinearEngine::new(physical, &faults).unwrap();
        let (got, stats) = eng.closure(&a).unwrap();
        prop_assert_eq!(got, warshall(&a));
        prop_assert_eq!(stats.cells, physical - faults.len());
    }

    #[test]
    fn engines_agree_over_maxmin(
        n in 3usize..8,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = DenseMatrix::<MaxMin>::from_fn(n, n, |i, j| {
            if i != j && rng.gen_bool(0.4) { rng.gen_range(1..50) } else { 0 }
        });
        let want = warshall(&a);
        let (lin, _) = LinearEngine::new(2).closure(&a).unwrap();
        let (grd, _) = GridEngine::new(2).closure(&a).unwrap();
        prop_assert_eq!(&lin, &want);
        prop_assert_eq!(&grd, &want);
    }
}
