//! Property-based equivalence for the sparse data plane.
//!
//! Three independent closure paths must agree bit-for-bit on random
//! graphs: the sparse CSR pipeline (`sparse_closure`, Tarjan on CSR +
//! component-DAG row-union), the dense condensation path
//! (`closure_via_condensation`), and the `BitMatrix` pivot sweep — all
//! reflexive. On top of that: the on-demand DFS mode must answer every
//! pair exactly like the materialized closure, the Matrix-Market
//! loader must round-trip bit-identically (and reject malformed input
//! with errors, never panics), and the tiled systolic bridge must match
//! the untiled closure at tile sizes straddling every boundary —
//! `1`, `t−1`, `t`, `t+1`, and `c` — including fully-empty and
//! fully-dense tile grids.

use systolic::closure::{
    closure_via_condensation, condense_csr, gnp_csr, powerlaw, sparse_closure, ClosureMode,
    CsrGraph, SparseClosure, SparseOptions,
};
use systolic::partition::tiled_dag_closure;
use systolic::semiring::BitMatrix;
use systolic_util::{Checker, Rng};

/// A random graph drawn from one of the CSR generators, small enough to
/// compare against the dense n×n oracle.
fn random_graph(rng: &mut Rng) -> CsrGraph {
    let seed = rng.gen_range_u64(0, u64::MAX);
    match rng.gen_usize(3) {
        0 => {
            let n = 1 + rng.gen_usize(256);
            let p = [0.002, 0.01, 0.05, 0.3][rng.gen_usize(4)];
            gnp_csr(n, p, seed)
        }
        1 => {
            let n = 2 + rng.gen_usize(255);
            let d = 1 + rng.gen_usize(6);
            powerlaw(n, d, seed)
        }
        _ => {
            // Hand-rolled edge soup, including self-loops and duplicates,
            // to exercise paths the generators never emit.
            let n = 1 + rng.gen_usize(48);
            let e = rng.gen_usize(4 * n);
            let edges: Vec<(u32, u32)> = (0..e)
                .map(|_| (rng.gen_usize(n) as u32, rng.gen_usize(n) as u32))
                .collect();
            CsrGraph::from_edges(n, &edges)
        }
    }
}

fn dense_oracle(g: &CsrGraph) -> BitMatrix {
    let mut m = BitMatrix::zeros(g.n());
    for (u, v) in g.edges() {
        m.set(u as usize, v as usize, true);
    }
    m.transitive_closure()
}

#[test]
fn sparse_condensation_and_dense_sweep_agree() {
    Checker::new("sparse ≡ condensation ≡ dense sweep", 24).run(|rng| {
        let g = random_graph(rng);
        let want = dense_oracle(&g);
        let via_cond = closure_via_condensation(&g.to_digraph());
        if via_cond != want {
            return Err(format!("condensation path diverged at n={}", g.n()));
        }
        let sc = sparse_closure(&g);
        if sc.mode() != ClosureMode::Exact {
            return Err(format!("expected Exact mode at n={}", g.n()));
        }
        if sc.to_bitmatrix() != want {
            return Err(format!("sparse path diverged at n={}", g.n()));
        }
        // Row/query API agrees with the matrix view on sampled vertices.
        for _ in 0..16 {
            let u = rng.gen_usize(g.n());
            let v = rng.gen_usize(g.n());
            if sc.reachable(u, v) != want.get(u, v) {
                return Err(format!("reachable({u}, {v}) diverged at n={}", g.n()));
            }
            let row = sc.row(u);
            if row.len() != sc.row_len(u) {
                return Err(format!("row_len({u}) != row({u}).len() at n={}", g.n()));
            }
            if row.iter().any(|&w| !want.get(u, w as usize)) {
                return Err(format!("row({u}) contains unreachable vertex"));
            }
        }
        Ok(())
    });
}

#[test]
fn on_demand_mode_answers_like_exact() {
    Checker::new("on-demand DFS ≡ materialized closure", 16).run(|rng| {
        let g = random_graph(rng);
        let n = g.n();
        if n > 96 {
            return Ok(()); // all-pairs scan below; keep the case cheap
        }
        let want = dense_oracle(&g);
        let opts = SparseOptions {
            max_closure_bytes: 0, // force the DFS fallback
            ..SparseOptions::default()
        };
        let sc = SparseClosure::with_options(&g, opts);
        if sc.mode() != ClosureMode::OnDemand {
            return Err("max_closure_bytes=0 must force OnDemand".into());
        }
        for u in 0..n {
            for v in 0..n {
                if sc.reachable(u, v) != want.get(u, v) {
                    return Err(format!("on-demand reachable({u}, {v}) diverged at n={n}"));
                }
            }
            let mut row = sc.row(u);
            row.sort_unstable();
            let want_row: Vec<u32> = (0..n)
                .filter(|&v| want.get(u, v))
                .map(|v| v as u32)
                .collect();
            if row != want_row {
                return Err(format!("on-demand row({u}) diverged at n={n}"));
            }
        }
        Ok(())
    });
}

#[test]
fn matrix_market_round_trip_is_bit_identical() {
    Checker::new("Matrix-Market round trip", 24).run(|rng| {
        let g = random_graph(rng);
        let text = g.to_matrix_market();
        let back = CsrGraph::parse_matrix_market(&text)
            .map_err(|e| format!("round trip failed to parse: {e}"))?;
        if back != g {
            return Err(format!(
                "round trip not bit-identical at n={} e={}",
                g.n(),
                g.edge_count()
            ));
        }
        Ok(())
    });
}

#[test]
fn file_round_trip_preserves_graph() {
    let g = powerlaw(500, 4, 99);
    let path = std::env::temp_dir().join(format!(
        "systolic-proptest-roundtrip-{}.mtx",
        std::process::id()
    ));
    g.save(&path).unwrap();
    let back = CsrGraph::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(back, g);
}

#[test]
fn malformed_matrix_market_errors_do_not_panic() {
    let cases: &[(&str, &str)] = &[
        ("", "empty file"),
        (
            "%%MatrixMarket matrix coordinate pattern general\n",
            "missing size line",
        ),
        (
            "%%MatrixMarket matrix coordinate pattern general\n4 4 1\n1 2 3 4\n",
            "4-field entry",
        ),
        (
            "%%MatrixMarket matrix coordinate pattern general\n4 5 1\n1 2\n",
            "non-square",
        ),
        (
            "%%MatrixMarket matrix coordinate pattern general\nfour 4 1\n1 2\n",
            "bad dimension",
        ),
        (
            "%%MatrixMarket matrix coordinate pattern general\n4 4 2\n1 2\n",
            "nnz mismatch",
        ),
        (
            "%%MatrixMarket matrix coordinate pattern general\n4 4 1\n0 2\n",
            "0-based index",
        ),
        (
            "%%MatrixMarket matrix coordinate pattern general\n4 4 1\n5 2\n",
            "out of range",
        ),
        (
            "%%MatrixMarket matrix coordinate pattern general\n4 4 1\n1\n",
            "missing column",
        ),
        (
            "%%MatrixMarket matrix coordinate pattern general\n4 4 1\n1 x\n",
            "bad column",
        ),
        ("not a header\n4 4 1\n1 2\n", "bad header"),
    ];
    for (text, what) in cases {
        assert!(
            CsrGraph::parse_matrix_market(text).is_err(),
            "malformed input ({what}) parsed successfully"
        );
    }
}

/// Random strictly-lower-triangular DAG edges (`a > b`), the invariant
/// the tiled bridge is specified against.
fn random_dag_edges(rng: &mut Rng, c: usize) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for a in 1..c {
        for b in 0..a {
            if rng.gen_bool(0.15) {
                edges.push((a as u32, b as u32));
            }
        }
    }
    edges
}

fn dag_oracle(c: usize, edges: &[(u32, u32)]) -> BitMatrix {
    let mut m = BitMatrix::zeros(c);
    for &(a, b) in edges {
        m.set(a as usize, b as usize, true);
    }
    m.transitive_closure()
}

#[test]
fn tiled_closure_matches_dense_at_boundary_tile_sizes() {
    Checker::new("tiled DAG closure at boundary tile sizes", 12).run(|rng| {
        let c = 2 + rng.gen_usize(80);
        let edges = random_dag_edges(rng, c);
        let want = dag_oracle(c, &edges);
        let t0 = 2 + rng.gen_usize(c);
        for t in [1, t0 - 1, t0, t0 + 1, c] {
            if t == 0 {
                continue;
            }
            let (got, stats) = tiled_dag_closure(c, &edges, t);
            if got != want {
                return Err(format!("tiled closure diverged at c={c} t={t}"));
            }
            let grid = c.div_ceil(t);
            if stats.grid != grid || stats.total_tiles != grid * (grid + 1) / 2 {
                return Err(format!("tile accounting wrong at c={c} t={t}: {stats:?}"));
            }
        }
        Ok(())
    });
}

#[test]
fn tiled_closure_handles_empty_and_dense_grids() {
    for c in [1usize, 7, 64, 65] {
        for t in [1usize, 3, 64, 100] {
            // Fully empty: closure is the identity, only the diagonal
            // tiles are occupied (identity closure), and every
            // off-diagonal multiply is skipped.
            let (got, stats) = tiled_dag_closure(c, &[], t);
            let grid = c.div_ceil(t);
            assert_eq!(got, BitMatrix::identity(c), "empty c={c} t={t}");
            assert_eq!(stats.occupied_input_tiles, grid, "empty c={c} t={t}");
            assert_eq!(stats.tile_muls, 0, "empty c={c} t={t}");

            // Fully dense: every pair (a > b) present, closure is total
            // lower-triangular and every tile in the triangle is occupied.
            let edges: Vec<(u32, u32)> = (1..c as u32)
                .flat_map(|a| (0..a).map(move |b| (a, b)))
                .collect();
            let (got, stats) = tiled_dag_closure(c, &edges, t);
            assert_eq!(got, dag_oracle(c, &edges), "dense c={c} t={t}");
            if c > 1 {
                assert_eq!(
                    stats.occupied_input_tiles, stats.total_tiles,
                    "dense c={c} t={t}"
                );
                assert_eq!(stats.skipped_muls, 0, "dense c={c} t={t}");
            }
        }
    }
}

#[test]
fn tile_option_routes_through_bridge_and_matches() {
    Checker::new("SparseOptions::tile matches untiled", 10).run(|rng| {
        let g = random_graph(rng);
        let plain = sparse_closure(&g);
        if plain.mode() != ClosureMode::Exact {
            return Ok(());
        }
        let c = condense_csr(&g).len();
        let t = 1 + rng.gen_usize(c.max(1));
        let tiled = SparseClosure::with_options(
            &g,
            SparseOptions {
                tile: Some(t),
                ..SparseOptions::default()
            },
        );
        if tiled.to_bitmatrix() != plain.to_bitmatrix() {
            return Err(format!("tile={t} diverged from untiled at n={}", g.n()));
        }
        Ok(())
    });
}
