//! Property-based checks of the compile-once plan cache: executing a batch
//! from a memoized `CompiledPlan` (on a recycled simulator) must be
//! bit-identical — results *and* every `RunStats` counter except wall time —
//! to rebuilding the schedule from scratch, across engines, semirings,
//! batch shapes, and fault-injection modes. Also pins the hash-free `Bank`
//! slot table to a hash-map reference model.

use std::collections::HashMap;
use std::collections::VecDeque;
use systolic::arraysim::{Bank, FaultPlan};
use systolic::partition::{ClosureEngine, GridEngine, LinearEngine};
use systolic_semiring::{warshall, Bool, DenseMatrix, MinPlus, PathSemiring};
use systolic_util::{Checker, Rng};

fn bool_batch(rng: &mut Rng, n: usize, len: usize) -> Vec<DenseMatrix<Bool>> {
    (0..len)
        .map(|_| DenseMatrix::from_fn(n, n, |_, _| rng.gen_bool(0.3)))
        .collect()
}

fn weight_batch(rng: &mut Rng, n: usize, len: usize) -> Vec<DenseMatrix<MinPlus>> {
    (0..len)
        .map(|_| {
            DenseMatrix::from_fn(n, n, |_, _| {
                if rng.gen_bool(0.5) {
                    u64::MAX
                } else {
                    rng.gen_range_u64(1, 50)
                }
            })
        })
        .collect()
}

/// Runs `batch` on one long-lived engine twice (first call compiles the
/// plan, second replays it from cache) and on a fresh engine (forced
/// rebuild); all three runs must agree exactly.
fn assert_cached_replay<S, E, F>(make: F, batch: &[DenseMatrix<S>], what: &str)
where
    S: PathSemiring,
    E: ClosureEngine<S>,
    F: Fn() -> E,
    DenseMatrix<S>: PartialEq + std::fmt::Debug,
{
    let warm = make();
    let (r0, s0) = warm.closure_many(batch).unwrap();
    let (r1, s1) = warm.closure_many(batch).unwrap();
    let (rf, sf) = make().closure_many(batch).unwrap();
    assert_eq!(r0, rf, "{what}: first (compiling) run diverged");
    assert_eq!(r1, rf, "{what}: cached replay changed the results");
    assert_eq!(s0, sf, "{what}: first (compiling) run changed the stats");
    assert_eq!(s1, sf, "{what}: cached replay changed the stats");
}

#[test]
fn cached_plans_replay_bit_identically() {
    Checker::new("cached plans replay bit-identically", 12).run(|rng| {
        let n = 2 + rng.gen_usize(8); // 2..=9
        let len = 1 + rng.gen_usize(3); // 1..=3
        let m = 2 + rng.gen_usize(3); // 2..=4
        let s = 1 + rng.gen_usize(2); // 1..=2
        let bools = bool_batch(rng, n, len);
        let weights = weight_batch(rng, n, len);
        for (r, a) in LinearEngine::new(m)
            .closure_many(&bools)
            .unwrap()
            .0
            .iter()
            .zip(&bools)
        {
            assert_eq!(*r, warshall(a), "linear engine vs Warshall");
        }
        assert_cached_replay(|| LinearEngine::new(m), &bools, "linear/Bool");
        assert_cached_replay(|| LinearEngine::new(m), &weights, "linear/MinPlus");
        assert_cached_replay(|| GridEngine::new(s), &bools, "grid/Bool");
        assert_cached_replay(|| GridEngine::new(s), &weights, "grid/MinPlus");
        Ok(())
    });
}

/// Fault sequences are keyed to a per-call nonce, so the cached-vs-fresh
/// comparison aligns nonces explicitly: engine A runs twice (nonce 0
/// compiles, nonce 1 replays from cache); engine B runs nonce 0, drops its
/// caches, and runs nonce 1 with a forced rebuild. Matching nonces must
/// produce identical results, stats, and fault logs.
#[test]
fn cached_plans_replay_bit_identically_under_fault_injection() {
    Checker::new("cached plans under fault injection", 10).run(|rng| {
        let n = 3 + rng.gen_usize(7); // 3..=9
        let m = 2 + rng.gen_usize(3); // 2..=4
        let len = 1 + rng.gen_usize(3); // 1..=3
        let batch = bool_batch(rng, n, len);
        let seed = rng.gen_range_u64(1, 1 << 40);
        let plan = FaultPlan::transients(seed, 5e-4);
        let flat = |r: Result<_, _>| r.map_err(|e: systolic::partition::EngineError| e.to_string());

        let cached = LinearEngine::new(m).with_fault_plan(plan.clone());
        let a0 = flat(cached.closure_many(&batch));
        let fa0 = cached.recent_fault_events();
        let a1 = flat(cached.closure_many(&batch));
        let fa1 = cached.recent_fault_events();

        let fresh = LinearEngine::new(m).with_fault_plan(plan);
        let b0 = flat(fresh.closure_many(&batch));
        let fb0 = fresh.recent_fault_events();
        fresh.clear_caches();
        let b1 = flat(fresh.closure_many(&batch));
        let fb1 = fresh.recent_fault_events();

        assert_eq!(a0, b0, "nonce 0: compiling runs must agree");
        assert_eq!(fa0, fb0, "nonce 0: fault logs must agree");
        assert_eq!(a1, b1, "nonce 1: cached replay vs forced rebuild");
        assert_eq!(fa1, fb1, "nonce 1: fault logs must agree");
        Ok(())
    });
}

/// Reference model of one bank stream: a hash map keyed by the original
/// (pre-interning) stream key, exactly what the simulator used before slots
/// were interned to dense indices.
type Model = HashMap<usize, VecDeque<(u64, u64)>>;

fn model_front(model: &Model, slot: usize, now: u64) -> bool {
    model
        .get(&slot)
        .and_then(VecDeque::front)
        .is_some_and(|(ready, _)| *ready <= now)
}

#[test]
fn bank_slot_table_matches_hash_map_model() {
    Checker::new("bank slot table matches hash-map model", 24).run(|rng| {
        let slots = 1 + rng.gen_usize(6); // 1..=6
                                          // Distinct, shuffled sort keys: interning order ≠ key order.
        let mut keys: Vec<u64> = (0..slots as u64).map(|k| k * 17 + 3).collect();
        for i in (1..keys.len()).rev() {
            keys.swap(i, rng.gen_usize(i + 1));
        }
        let mut bank = Bank::<u64>::with_slots(keys.clone());
        let mut model: Model = HashMap::new();
        let mut now = 0u64;
        let mut stamp = 0u64; // unique payloads so corruption targets are identifiable
        for _ in 0..200 {
            let slot = rng.gen_usize(slots);
            match rng.gen_usize(4) {
                0 => {
                    stamp += 1;
                    bank.write(slot, now, stamp);
                    model.entry(slot).or_default().push_back((now + 1, stamp));
                }
                1 => {
                    stamp += 1;
                    bank.preload(slot, stamp);
                    model.entry(slot).or_default().push_back((0, stamp));
                }
                2 => {
                    let want = if model_front(&model, slot, now) {
                        model.get_mut(&slot).unwrap().pop_front().map(|(_, v)| v)
                    } else {
                        None
                    };
                    assert_eq!(bank.read(slot, now), want, "read at cycle {now}");
                }
                _ => now += 1 + rng.gen_usize(3) as u64,
            }
            assert_eq!(
                bank.can_read(slot, now),
                model_front(&model, slot, now),
                "can_read at cycle {now}"
            );
            let resident: usize = model.values().map(VecDeque::len).sum();
            assert_eq!(bank.resident(), resident, "resident words");
        }
        // Fault injection walks resident words in *sorted original-key*
        // order, so the victim is independent of slot-interning order —
        // predict it from the hash-map model.
        let resident: usize = model.values().map(VecDeque::len).sum();
        if resident > 0 {
            let nth = rng.gen_usize(2 * resident);
            let mut order: Vec<usize> = (0..slots).collect();
            order.sort_unstable_by_key(|&s| keys[s]);
            let mut idx = nth % resident;
            let mut want = None;
            for s in order {
                let fifo = model.get(&s).map(|f| f.len()).unwrap_or(0);
                if idx < fifo {
                    want = Some(model[&s][idx].1);
                    break;
                }
                idx -= fifo;
            }
            let mut got = None;
            assert!(bank.corrupt_resident(nth, |e| got = Some(*e)));
            assert_eq!(got, want, "corrupt_resident victim (nth = {nth})");
        } else {
            assert!(!bank.corrupt_resident(0, |_| ()));
        }
        Ok(())
    });
}
