//! Property-based equivalence of the W-word Boolean lane planes.
//!
//! For every width `W ∈ {1, 2, 4}`, `PackedEngine<BoolLanes<W>>` must be
//! bit-identical to the scalar `LinearEngine` — identical closure results
//! and merged `RunStats` equal to the instance-order merge of the
//! per-instance scalar runs — at batch sizes straddling the `64·W` group
//! boundary on both sides: 1, `64·W − 1`, `64·W`, and `64·W + 1`.

use systolic::partition::{ClosureEngine, LinearEngine, PackedEngine};
use systolic_arraysim::RunStats;
use systolic_semiring::{warshall, Bool, BoolLanes, DenseMatrix};
use systolic_util::{Checker, Rng};

fn random_batch(rng: &mut Rng, len: usize, n: usize) -> Vec<DenseMatrix<Bool>> {
    (0..len)
        .map(|_| DenseMatrix::from_fn(n, n, |i, j| i != j && rng.gen_bool(0.25)))
        .collect()
}

fn per_instance_merge(
    engine: &LinearEngine,
    batch: &[DenseMatrix<Bool>],
) -> (Vec<DenseMatrix<Bool>>, RunStats) {
    let mut results = Vec::with_capacity(batch.len());
    let mut merged: Option<RunStats> = None;
    for a in batch {
        let (c, s) = engine.closure(a).unwrap();
        results.push(c);
        match &mut merged {
            None => merged = Some(s),
            Some(acc) => acc.merge(&s),
        }
    }
    (results, merged.unwrap())
}

fn check_plane<const W: usize>(rng: &mut Rng) -> Result<(), String> {
    let lanes = 64 * W;
    let n = 2 + rng.gen_usize(4); // 2..=5
    let m = 1 + rng.gen_usize(3); // 1..=3
    let scalar = LinearEngine::new(m);
    let packed = PackedEngine::<BoolLanes<W>>::over(m);
    for len in [1, lanes - 1, lanes, lanes + 1] {
        let batch = random_batch(rng, len, n);
        let (want, want_stats) = per_instance_merge(&scalar, &batch);
        let (got, got_stats) = packed.closure_many(&batch).unwrap();
        if got != want {
            return Err(format!("results diverge at W={W} n={n} m={m} len={len}"));
        }
        if got_stats != want_stats {
            return Err(format!("stats diverge at W={W} n={n} m={m} len={len}"));
        }
        if got[len - 1] != warshall(&batch[len - 1]) {
            return Err(format!("reference diverges at W={W} n={n} m={m} len={len}"));
        }
    }
    if packed.fallback_runs() != 0 {
        return Err(format!("Boolean plane W={W} must never fall back"));
    }
    Ok(())
}

#[test]
fn w1_plane_is_bit_identical_to_linear() {
    Checker::new("64-lane plane bit-identical to linear", 2).run(check_plane::<1>);
}

#[test]
fn w2_plane_is_bit_identical_to_linear() {
    Checker::new("128-lane plane bit-identical to linear", 2).run(check_plane::<2>);
}

#[test]
fn w4_plane_is_bit_identical_to_linear() {
    Checker::new("256-lane plane bit-identical to linear", 2).run(check_plane::<4>);
}
