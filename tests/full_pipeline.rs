//! End-to-end integration: dependence graph → transformations → G-graph →
//! schedules → simulated arrays → metrics, all on one problem instance.

use systolic::closure::{gnp, Backend, ClosureSolver};
use systolic::dgraph::{closure_full, closure_lean, eval_closure_graph};
use systolic::metrics::{compare_grid_run, compare_linear_run, LinearModel};
use systolic::partition::{
    ClosureEngine, FixedArrayEngine, FixedLinearEngine, GridEngine, GsetSchedule, LinearEngine,
};
use systolic::transform::{pipelined, regular, unidirectional, GGraph};
use systolic_semiring::{reflexive, warshall, Bool};

#[test]
fn every_stage_and_engine_agrees_with_warshall() {
    for (n, seed) in [(5usize, 1u64), (8, 2), (11, 3)] {
        let a = gnp(n, 0.25, seed).adjacency_matrix();
        let want = warshall(&a);
        let ar = reflexive(&a);

        // Graph stages.
        for (name, g) in [
            ("full", closure_full(n)),
            ("lean", closure_lean(n)),
            ("pipelined", pipelined(n)),
            ("unidirectional", unidirectional(n)),
            ("regular", regular(n)),
        ] {
            let got =
                eval_closure_graph::<Bool>(&g, &ar).unwrap_or_else(|e| panic!("{name} n={n}: {e}"));
            assert_eq!(got, want, "{name} n={n}");
        }

        // G-graph stream semantics.
        assert_eq!(GGraph::new(n).eval::<Bool>(&ar), want, "ggraph n={n}");

        // Simulated arrays.
        let engines: Vec<(&str, Box<dyn ClosureEngine<Bool>>)> = vec![
            ("fixed", Box::new(FixedArrayEngine::new())),
            ("fixed-linear", Box::new(FixedLinearEngine::new())),
            ("linear m=3", Box::new(LinearEngine::new(3))),
            ("linear m=7", Box::new(LinearEngine::new(7))),
            ("grid 2x2", Box::new(GridEngine::new(2))),
            ("grid 3x3", Box::new(GridEngine::new(3))),
        ];
        for (name, eng) in engines {
            let (got, stats) = eng.closure(&a).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(got, want, "{name} n={n}");
            assert_eq!(stats.useful_ops, (n * (n - 1) * (n - 2)) as u64, "{name}");
        }
    }
}

#[test]
fn schedules_are_legal_and_cover_the_ggraph() {
    for n in [4usize, 9, 16, 25] {
        for m in [1usize, 2, 3, 5, 8] {
            let s = GsetSchedule::linear(n, m);
            assert_eq!(s.total_gnodes(), n * (n + 1));
            s.verify_legal().unwrap();
        }
        for side in [1usize, 2, 3, 4] {
            let s = GsetSchedule::grid(n, side);
            assert_eq!(s.total_gnodes(), n * (n + 1));
            s.verify_legal().unwrap();
        }
    }
}

#[test]
fn measured_metrics_track_the_paper_models() {
    // One mid-size design point per structure; chained instances push the
    // measurement toward steady state. Tolerances cover pipeline fill and
    // the paper-acknowledged boundary sets.
    let n = 20;
    let batch: Vec<_> = (0..4)
        .map(|i| gnp(n, 0.2, 50 + i).adjacency_matrix())
        .collect();

    let (res, stats) = LinearEngine::new(4).closure_many(&batch).unwrap();
    for (r, a) in res.iter().zip(&batch) {
        assert_eq!(*r, warshall(a));
    }
    for row in compare_linear_run(n, 4, &stats, batch.len() as u64) {
        if row.metric.contains("throughput") || row.metric.contains("utilization") {
            assert!(
                row.within(0.25),
                "linear {}: paper {} measured {}",
                row.metric,
                row.paper,
                row.measured
            );
        }
    }

    let (res, stats) = GridEngine::new(2).closure_many(&batch).unwrap();
    for (r, a) in res.iter().zip(&batch) {
        assert_eq!(*r, warshall(a));
    }
    for row in compare_grid_run(n, 2, &stats, batch.len() as u64) {
        if row.metric.contains("throughput") || row.metric.contains("utilization") {
            assert!(
                row.within(0.25),
                "grid {}: paper {} measured {}",
                row.metric,
                row.paper,
                row.measured
            );
        }
    }
}

#[test]
fn linear_and_grid_share_throughput_at_equal_cells() {
    // §4.2: same m ⇒ same throughput/utilization. Measured cycles of the
    // two structures must agree within a small factor.
    let n = 18;
    let a = gnp(n, 0.2, 9).adjacency_matrix();
    let (_, ls) = LinearEngine::new(4).closure(&a).unwrap();
    let (_, gs) = GridEngine::new(2).closure(&a).unwrap();
    let ratio = ls.cycles as f64 / gs.cycles as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "linear {} vs grid {} cycles",
        ls.cycles,
        gs.cycles
    );
    // Paper model for reference.
    let model = LinearModel { n, m: 4 };
    assert!(ls.cycles as f64 >= model.cycles_per_instance());
}

#[test]
fn solver_facade_matches_direct_engines() {
    let g = gnp(9, 0.3, 77);
    let direct = LinearEngine::new(3)
        .closure(&g.adjacency_matrix())
        .unwrap()
        .0;
    let facade = ClosureSolver::new(Backend::Linear { cells: 3 })
        .transitive_closure(&g)
        .unwrap();
    for i in 0..9 {
        for j in 0..9 {
            assert_eq!(*direct.get(i, j), facade.reachable(i, j));
        }
    }
}
