//! End-to-end tests of the `systolic` command-line binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_systolic"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("systolic-test-{name}-{}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn closure_on_edge_file() {
    let f = write_temp("edges", "0 1\n1 2\n2 0\n2 3\n");
    let out = bin()
        .args(["closure", "--backend", "linear:3", "--show"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("13 reachable pairs"), "{text}");
    assert!(text.contains("linear-partitioned"), "{text}");
    // The cycle {0,1,2} reaches everything; 3 reaches only itself.
    assert!(text.contains("1111"));
    assert!(text.contains("...1"));
    std::fs::remove_file(f).ok();
}

#[test]
fn closure_with_mapping_flag() {
    let f = write_temp("edges-mapping", "0 1\n1 2\n2 0\n2 3\n");
    // --mapping speaks the mapping layer's names; lsgp runs the simulated
    // coalescing engine, lpgs is an alias of the linear backend.
    let out = bin()
        .args(["closure", "--mapping", "lsgp:3"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("13 reachable pairs"), "{text}");
    assert!(text.contains("lsgp-coalescing"), "{text}");

    let out = bin()
        .args(["closure", "--mapping", "lpgs:3"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("linear-partitioned"), "{text}");

    let out = bin()
        .args(["closure", "--mapping", "hexagonal"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown mapping"));
    std::fs::remove_file(f).ok();
}

#[test]
fn closure_reads_stdin() {
    let mut child = bin()
        .args(["closure", "--backend", "reference", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"0 1\n1 0\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("4 reachable pairs"));
}

#[test]
fn paths_finds_shortest_route() {
    let f = write_temp("weights", "0 1 5\n1 2 2\n0 2 9\n");
    let out = bin()
        .args(["paths"])
        .arg(&f)
        .args(["0", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("distance 7"), "{text}");
    assert!(text.contains("[0, 1, 2]"), "{text}");
    std::fs::remove_file(f).ok();
}

#[test]
fn schedule_reports_legality() {
    let out = bin().args(["schedule", "10", "3"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dependence-legal"), "{text}");
    assert!(text.contains("110 G-nodes"), "{text}"); // n(n+1)

    let out = bin()
        .args(["schedule", "10", "2", "--grid"])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("grid mapping"));
    assert!(out.status.success());
}

#[test]
fn info_prints_the_paper_formulas() {
    let out = bin().args(["info", "100", "8"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("970200"), "{text}"); // 100·99·98
    assert!(text.contains("0.9606"), "{text}"); // utilization
    assert!(text.contains("126250"), "{text}"); // cycles per problem
}

#[test]
fn plancache_verifies_cached_reuse() {
    let out = bin()
        .args([
            "plancache",
            "--n",
            "10",
            "--cells",
            "3",
            "--instances",
            "3",
            "--iters",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("byte-identical to fresh build: true"),
        "{text}"
    );
    assert!(text.contains("speedup"), "{text}");
}

#[test]
fn packed_verifies_lane_identity() {
    // 70 instances = one full lane group plus a partial one.
    let out = bin()
        .args([
            "packed",
            "--n",
            "8",
            "--cells",
            "3",
            "--instances",
            "70",
            "--iters",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 lane groups"), "{text}");
    assert!(text.contains("byte-identical to scalar: true"), "{text}");
    assert!(text.contains("speedup"), "{text}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let out = bin().args(["closure"]).output().unwrap();
    assert!(!out.status.success());
}
