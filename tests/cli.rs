//! End-to-end tests of the `systolic` command-line binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_systolic"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("systolic-test-{name}-{}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn closure_on_edge_file() {
    let f = write_temp("edges", "0 1\n1 2\n2 0\n2 3\n");
    let out = bin()
        .args(["closure", "--backend", "linear:3", "--show"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("13 reachable pairs"), "{text}");
    assert!(text.contains("linear-partitioned"), "{text}");
    // The cycle {0,1,2} reaches everything; 3 reaches only itself.
    assert!(text.contains("1111"));
    assert!(text.contains("...1"));
    std::fs::remove_file(f).ok();
}

#[test]
fn closure_with_mapping_flag() {
    let f = write_temp("edges-mapping", "0 1\n1 2\n2 0\n2 3\n");
    // --mapping speaks the mapping layer's names; lsgp runs the simulated
    // coalescing engine, lpgs is an alias of the linear backend.
    let out = bin()
        .args(["closure", "--mapping", "lsgp:3"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("13 reachable pairs"), "{text}");
    assert!(text.contains("lsgp-coalescing"), "{text}");

    let out = bin()
        .args(["closure", "--mapping", "lpgs:3"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("linear-partitioned"), "{text}");

    let out = bin()
        .args(["closure", "--mapping", "hexagonal"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown mapping"));
    std::fs::remove_file(f).ok();
}

#[test]
fn closure_reads_stdin() {
    let mut child = bin()
        .args(["closure", "--backend", "reference", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"0 1\n1 0\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("4 reachable pairs"));
}

#[test]
fn paths_finds_shortest_route() {
    let f = write_temp("weights", "0 1 5\n1 2 2\n0 2 9\n");
    let out = bin()
        .args(["paths"])
        .arg(&f)
        .args(["0", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("distance 7"), "{text}");
    assert!(text.contains("[0, 1, 2]"), "{text}");
    std::fs::remove_file(f).ok();
}

#[test]
fn schedule_reports_legality() {
    let out = bin().args(["schedule", "10", "3"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dependence-legal"), "{text}");
    assert!(text.contains("110 G-nodes"), "{text}"); // n(n+1)

    let out = bin()
        .args(["schedule", "10", "2", "--grid"])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("grid mapping"));
    assert!(out.status.success());
}

#[test]
fn info_prints_the_paper_formulas() {
    let out = bin().args(["info", "100", "8"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("970200"), "{text}"); // 100·99·98
    assert!(text.contains("0.9606"), "{text}"); // utilization
    assert!(text.contains("126250"), "{text}"); // cycles per problem
}

#[test]
fn plancache_verifies_cached_reuse() {
    let out = bin()
        .args([
            "plancache",
            "--n",
            "10",
            "--cells",
            "3",
            "--instances",
            "3",
            "--iters",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("byte-identical to fresh build: true"),
        "{text}"
    );
    assert!(text.contains("speedup"), "{text}");
}

#[test]
fn packed_verifies_lane_identity() {
    // 70 instances = one full lane group plus a partial one.
    let out = bin()
        .args([
            "packed",
            "--n",
            "8",
            "--cells",
            "3",
            "--instances",
            "70",
            "--iters",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 lane groups"), "{text}");
    assert!(text.contains("byte-identical to scalar: true"), "{text}");
    assert!(text.contains("speedup"), "{text}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let out = bin().args(["closure"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn zero_sized_backend_args_exit_cleanly() {
    // Regression: these used to trip debug asserts (or divide by zero)
    // deep inside the mapping constructors instead of failing usage.
    let f = write_temp("edges-zero-backend", "0 1\n1 2\n");
    for spec in ["linear:0", "grid:0", "lsgp:0", "blocked:0"] {
        let out = bin()
            .args(["closure", "--backend", spec])
            .arg(&f)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{spec} must fail");
        assert_eq!(out.status.code(), Some(2), "{spec}: clean exit, no panic");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("at least 1"), "{spec}: {err}");
        assert!(!err.contains("panicked"), "{spec}: {err}");
    }
    for spec in ["lpgs:0", "lsgp:0", "grid:0"] {
        let out = bin()
            .args(["closure", "--mapping", spec])
            .arg(&f)
            .output()
            .unwrap();
        assert!(!out.status.success(), "--mapping {spec} must fail");
        assert_eq!(out.status.code(), Some(2));
        assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));
    }
    std::fs::remove_file(f).ok();
}

#[test]
fn malformed_edge_files_are_rejected() {
    // Regression: empty/comment-only input used to parse as a spurious
    // one-vertex graph, and trailing tokens were silently dropped.
    let cases = [
        ("empty", ""),
        ("comments", "# only\n# comments\n\n"),
        ("trailing", "0 1\n1 2 extra\n"),
        ("nonsense", "zero one\n"),
    ];
    for (name, content) in cases {
        let f = write_temp(&format!("edges-bad-{name}"), content);
        let out = bin()
            .args(["closure", "--backend", "bit"])
            .arg(&f)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{name} must be rejected");
        assert_eq!(out.status.code(), Some(2), "{name}: clean usage exit");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "{name}: {err}");
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn serve_runs_a_session_over_stdio() {
    let mut child = bin()
        .args(["serve", "--vertices", "6"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"INSERT 0 1\nINSERT 1 2\nREACH 0 2\nDELETE 0 1\nREACH 0 2\nBOGUS\nSTATS\nQUIT\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], "OK INSERT 0 1 added=1");
    assert_eq!(lines[2], "REACH 0 2 true");
    assert_eq!(lines[4], "REACH 0 2 false");
    assert!(lines[5].starts_with("ERR "), "{}", lines[5]);
    assert!(lines[6].starts_with("STATS "), "{}", lines[6]);
    assert_eq!(lines[7], "BYE");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("session over: 7 commands, 1 errors"), "{err}");
}

#[test]
fn closure_sparse_on_generated_graph() {
    let out = bin()
        .args([
            "closure",
            "--gen",
            "powerlaw:n=2000,d=4,seed=7",
            "--sparse",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("graph: n=2000"), "{text}");
    assert!(text.contains("SCCs"), "{text}");
    assert!(text.contains("(sparse, Exact mode"), "{text}");
    assert!(text.contains("fill-in:"), "{text}");
    assert!(text.contains("condensation:"), "{text}");
}

#[test]
fn closure_sparse_matches_dense_rows_via_load() {
    // The same 4-vertex graph as `closure_on_edge_file`, shipped as a
    // 1-based Matrix-Market file through --load --sparse: the --show
    // grid must be identical to the dense backend's.
    let mtx = write_temp(
        "load-roundtrip.mtx",
        "%%MatrixMarket matrix coordinate pattern general\n4 4 4\n1 2\n2 3\n3 1\n3 4\n",
    );
    let out = bin()
        .args(["closure", "--load"])
        .arg(&mtx)
        .args(["--sparse", "--show"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1111"), "{text}");
    assert!(text.contains("...1"), "{text}");
    std::fs::remove_file(mtx).ok();
}

#[test]
fn closure_sparse_tile_stats_line() {
    let out = bin()
        .args([
            "closure",
            "--gen",
            "gnp:n=300,p=0.01,seed=3",
            "--sparse",
            "--tile",
            "32",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tiles:"), "{text}");
    assert!(text.contains("t=32"), "{text}");
}

#[test]
fn closure_bad_gen_and_load_exit_cleanly() {
    for spec in ["powerlaw:n=0", "mesh:n=5", "powerlaw:n=ten", "powerlaw:q=1"] {
        let out = bin().args(["closure", "--gen", spec]).output().unwrap();
        assert!(!out.status.success(), "--gen {spec} must fail");
        assert_eq!(out.status.code(), Some(2), "--gen {spec}: clean exit");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(!err.contains("panicked"), "--gen {spec}: {err}");
    }
    let out = bin()
        .args(["closure", "--load", "/nonexistent/graph.mtx"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
}

#[test]
fn serve_loads_a_matrix_market_file() {
    let mtx = write_temp(
        "serve-load.mtx",
        "%%MatrixMarket matrix coordinate pattern general\n4 4 4\n1 2\n2 3\n3 1\n3 4\n",
    );
    let mut child = bin()
        .args(["serve", "--vertices", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    stdin
        .write_all(
            format!(
                "LOAD {}\nREACH 0 3\nLOAD /nonexistent.mtx\nREACH 0 3\nQUIT\n",
                mtx.display()
            )
            .as_bytes(),
        )
        .unwrap();
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], "OK LOAD n=4 edges=4", "{text}");
    assert_eq!(lines[1], "REACH 0 3 true", "{text}");
    assert!(lines[2].starts_with("ERR "), "{text}");
    // A failed LOAD leaves the previous graph serving.
    assert_eq!(lines[3], "REACH 0 3 true", "{text}");
    std::fs::remove_file(mtx).ok();
}

#[test]
fn serve_seeds_from_an_edge_file() {
    let f = write_temp("edges-serve", "0 1\n1 2\n2 0\n");
    let mut child = bin()
        .args(["serve", "--file"])
        .arg(&f)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"REACH 2 1\nQUIT\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("REACH 2 1 true"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    std::fs::remove_file(f).ok();
}

#[test]
fn algo_lu_matches_the_dependence_graph_reference() {
    let out = bin()
        .args(["algo", "lu", "-n", "16", "--mapping", "lpgs:4"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("lu n = 16"), "{text}");
    assert!(text.contains("lpgs-linear"), "{text}");
    assert!(
        text.contains("bit-identical to the dependence-graph reference: true"),
        "{text}"
    );
}

#[test]
fn algo_faddeev_runs_on_the_grid_mapping() {
    let out = bin()
        .args(["algo", "faddeev", "-n", "16", "--mapping", "grid:4"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("faddeev"), "{text}");
    assert!(text.contains("grid-partitioned"), "{text}");
    assert!(text.contains("Schur complement"), "{text}");
    assert!(
        text.contains("bit-identical to the dependence-graph reference: true"),
        "{text}"
    );
}

#[test]
fn algo_timed_runs_vary_the_gnode_durations() {
    let out = bin()
        .args(["algo", "lu", "-n", "12", "--mapping", "grid:3", "--timed"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("varying"), "{text}");
    assert!(
        text.contains("bit-identical to the dependence-graph reference: true"),
        "{text}"
    );
}

#[test]
fn algo_bad_usage_exits_cleanly() {
    for args in [
        vec!["algo"],
        vec!["algo", "cholesky"],
        vec!["algo", "lu", "--mapping", "torus:4"],
        vec!["algo", "lu", "-n", "1"],
    ] {
        let out = bin().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(!err.contains("panicked"), "{args:?}: {err}");
    }
}
