//! Chaos acceptance for the hardened service: kill-and-recover at every
//! WAL byte offset, seeded protocol fuzz, fault-injected transports, and
//! concurrent TCP sessions — all checked against full-recompute oracles.
//!
//! The contract under test: a crash recovers exactly the longest
//! committed prefix of the mutation history (never a wrong closure,
//! never a panic); a byzantine or dying client hurts only its own
//! session; and four clients hammering one daemon read the same closure
//! a single-threaded replay would.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use systolic::closure::DiGraph;
use systolic_semiring::BitMatrix;
use systolic_service::wal::FRAME_LEN;
use systolic_service::{
    serve, serve_tcp, ChaosPlan, ChaosReader, ChaosWriter, Command, Durability, ReachService,
    SessionLimits, SharedService, WalOp,
};
use systolic_util::Rng;

fn temp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("systolic-chaos-{tag}-{}", std::process::id()))
}

fn scrub(wal: &std::path::Path) {
    std::fs::remove_file(wal).ok();
    std::fs::remove_file(Durability::snapshot_path(wal)).ok();
}

fn warshall(g: &DiGraph) -> BitMatrix {
    BitMatrix::from_dense(&g.adjacency_matrix()).transitive_closure()
}

/// Kill-and-recover sweep: run a durable service over a seeded mutation
/// stream, then truncate the WAL at *every* byte offset and recover. At
/// each offset the recovered closure must equal a full recompute over
/// exactly the committed prefix (`offset / FRAME_LEN` records) — one
/// byte short of a frame loses that frame and nothing else.
#[test]
fn wal_truncation_sweep_recovers_exactly_the_committed_prefix() {
    const N: usize = 12;
    let wal = temp("sweep.wal");
    scrub(&wal);
    let mut committed: Vec<(WalOp, usize, usize)> = Vec::new();
    let mut shadow = DiGraph::new(N);
    {
        let (d, g, _) = Durability::open(&wal, None, DiGraph::new(N)).unwrap();
        let mut svc = ReachService::new(g).with_durability(d);
        let mut rng = Rng::seed_from_u64(0xC0FFEE);
        for _ in 0..80 {
            let (u, v) = (rng.gen_usize(N), rng.gen_usize(N));
            if rng.gen_bool(0.7) {
                if !shadow.has_edge(u, v) {
                    shadow.add_edge(u, v);
                    committed.push((WalOp::Insert, u, v));
                }
                svc.execute(Command::Insert(u, v));
            } else {
                if shadow.remove_edge(u, v) {
                    committed.push((WalOp::Delete, u, v));
                }
                svc.execute(Command::Delete(u, v));
            }
        }
    }
    let full = std::fs::read(&wal).unwrap();
    assert_eq!(
        full.len(),
        committed.len() * FRAME_LEN,
        "every effective mutation is one fixed-size frame"
    );
    assert!(committed.len() > 40, "stream exercised both ops");
    let cut_wal = temp("sweep-cut.wal");
    for cut in 0..=full.len() {
        scrub(&cut_wal);
        std::fs::write(&cut_wal, &full[..cut]).unwrap();
        let (_d, g, report) =
            Durability::open(&cut_wal, None, DiGraph::new(N)).unwrap_or_else(|e| {
                panic!("recovery at offset {cut} must not fail: {e}");
            });
        let k = cut / FRAME_LEN;
        assert_eq!(report.replayed, k as u64, "offset {cut}");
        assert_eq!(report.torn_bytes, (cut % FRAME_LEN) as u64, "offset {cut}");
        let mut oracle = DiGraph::new(N);
        for &(op, u, v) in &committed[..k] {
            match op {
                WalOp::Insert => oracle.add_edge(u, v),
                WalOp::Delete => {
                    oracle.remove_edge(u, v);
                }
            }
        }
        let mut svc = ReachService::new(g);
        assert!(
            *svc.closure() == warshall(&oracle),
            "offset {cut}: recovered closure diverged from the \
             {k}-record committed prefix"
        );
    }
    scrub(&wal);
    scrub(&cut_wal);
}

/// Mirrors the session loop's per-line answer rule, so the fuzzer can
/// predict exactly how many response lines a garbage stream earns.
fn expected_answers(line: &[u8], max_line: usize) -> usize {
    if line.len() > max_line {
        return 1; // ERR line too long
    }
    let Ok(s) = std::str::from_utf8(line) else {
        return 1; // ERR not UTF-8
    };
    let t = s.trim();
    usize::from(!(t.is_empty() || t.starts_with('#')))
}

/// Seeded protocol fuzz: random printable garbage, raw bytes, NULs,
/// oversized lines and valid commands interleaved. The server must never
/// panic, must answer exactly one line per non-blank/non-comment request
/// line, and must keep the session alive throughout.
#[test]
fn protocol_fuzz_never_panics_and_answers_one_line_per_request() {
    const MAX_LINE: usize = 4096;
    for seed in 0..8u64 {
        let mut rng = Rng::seed_from_u64(0xF022 + seed);
        let mut input: Vec<u8> = Vec::new();
        let mut expect = 0usize;
        for _ in 0..300 {
            let mut line: Vec<u8> = match rng.gen_usize(6) {
                0 => format!("REACH {} {}", rng.gen_usize(12), rng.gen_usize(12)).into_bytes(),
                1 => format!("INSERT {} {}", rng.gen_usize(8), rng.gen_usize(8)).into_bytes(),
                2 => {
                    // printable garbage (may parse, may not)
                    let len = rng.gen_usize(40);
                    (0..len).map(|_| 0x20 + rng.gen_usize(95) as u8).collect()
                }
                3 => {
                    // raw bytes: NULs, high bits, broken UTF-8
                    let len = 1 + rng.gen_usize(24);
                    (0..len)
                        .map(|_| match rng.gen_usize(4) {
                            0 => 0u8,
                            1 => 0xFF,
                            2 => 0xC3, // dangling UTF-8 lead byte
                            _ => rng.gen_usize(256) as u8,
                        })
                        .collect()
                }
                4 => vec![b'A'; MAX_LINE + 1 + rng.gen_usize(1 << 20)],
                _ => {
                    if rng.gen_bool(0.5) {
                        b"   ".to_vec()
                    } else {
                        b"# comment".to_vec()
                    }
                }
            };
            line.retain(|&b| b != b'\n'); // one request per line, by construction
            if std::str::from_utf8(&line).is_ok_and(|s| {
                s.split_whitespace()
                    .next()
                    .is_some_and(|w| w.eq_ignore_ascii_case("QUIT"))
            }) {
                line.insert(0, b'X'); // keep the fuzz session running
            }
            expect += expected_answers(&line, MAX_LINE);
            input.extend_from_slice(&line);
            input.push(b'\n');
        }
        let svc = SharedService::new(
            ReachService::new(DiGraph::new(12)),
            SessionLimits {
                max_line: MAX_LINE,
                read_timeout: None,
            },
        );
        let mut out = Vec::new();
        let summary = serve(&svc, input.as_slice(), &mut out).unwrap();
        let text = String::from_utf8(out).expect("responses are always UTF-8");
        assert_eq!(
            text.lines().count(),
            expect,
            "seed {seed}: one answer per request line"
        );
        for line in text.lines() {
            assert!(
                line.starts_with("REACH ") || line.starts_with("OK ") || line.starts_with("ERR "),
                "seed {seed}: unexpected response {line:?}"
            );
        }
        assert!(!summary.quit, "seed {seed}: fuzz never sends QUIT");
        assert!(
            summary.oversize > 0,
            "seed {seed}: oversized lines occurred"
        );
    }
}

/// Transport chaos: a session cut mid-stream dies with a transport error
/// (never a panic, never a half-written response buffer the next session
/// sees), replays byte-for-byte under the same seed, and leaves the
/// shared service usable.
#[test]
fn cut_sessions_die_alone_and_replay_exactly() {
    let mut script = String::new();
    for i in 0..60 {
        script += &format!("INSERT {} {}\nREACH 0 {}\n", i % 8, (i + 1) % 8, i % 8);
    }
    for seed in 0..10u64 {
        let cut_at = 1 + (seed * 131) % (script.len() as u64 - 1);
        let run = || {
            let svc =
                SharedService::new(ReachService::new(DiGraph::new(8)), SessionLimits::default());
            let reader = BufReader::new(ChaosReader::new(
                script.as_bytes(),
                ChaosPlan::cut(seed, cut_at),
            ));
            let mut out = Vec::new();
            let res = serve(&svc, reader, &mut out);
            // The shared service survives its session's death.
            let alive = svc.execute(Command::Reach(0, 0));
            (res.map(|s| s.commands).map_err(|e| e.kind()), out, alive)
        };
        let (res1, out1, alive1) = run();
        let (res2, out2, alive2) = run();
        assert_eq!(res1, res2, "seed {seed}: chaos replays exactly");
        assert_eq!(out1, out2, "seed {seed}: responses replay exactly");
        assert_eq!(
            res1.unwrap_err(),
            std::io::ErrorKind::ConnectionReset,
            "seed {seed}: the cut surfaced as a session transport error"
        );
        assert_eq!(
            alive1.to_string(),
            "REACH 0 0 true",
            "seed {seed}: service still answers after the dead session"
        );
        assert_eq!(alive1, alive2);
    }
}

/// Corrupting and fragmenting the transport turns requests into garbage
/// and responses into dribbles — the session must survive to EOF either
/// way, and a fragmenting (but lossless) writer must deliver the exact
/// response stream.
#[test]
fn corrupted_reads_and_fragmented_writes_never_kill_a_session() {
    let mut script = String::new();
    for i in 0..40 {
        script += &format!("INSERT {} {}\nREACH {} 0\n", i % 6, (i + 1) % 6, i % 6);
    }
    // Baseline: what a clean transport produces.
    let clean = {
        let svc = SharedService::new(ReachService::new(DiGraph::new(6)), SessionLimits::default());
        let mut out = Vec::new();
        serve(&svc, script.as_bytes(), &mut out).unwrap();
        out
    };
    for seed in 0..10u64 {
        // Corrupted reader: bit flips garble commands into ERRs (or other
        // commands), but the session runs to EOF without panicking.
        let svc = SharedService::new(ReachService::new(DiGraph::new(6)), SessionLimits::default());
        let reader = BufReader::new(ChaosReader::new(
            script.as_bytes(),
            ChaosPlan::noisy(seed, 24),
        ));
        let mut out = Vec::new();
        let summary = serve(&svc, reader, &mut out).unwrap();
        assert!(summary.commands + summary.errors > 0, "seed {seed}");
        for line in String::from_utf8_lossy(&out).lines() {
            assert!(
                line.starts_with("REACH ") || line.starts_with("OK ") || line.starts_with("ERR "),
                "seed {seed}: unexpected response {line:?}"
            );
        }
        // Fragmenting writer: short writes dribble the responses out one
        // seeded morsel at a time, but nothing is lost or reordered.
        let svc = SharedService::new(ReachService::new(DiGraph::new(6)), SessionLimits::default());
        let writer = ChaosWriter::new(
            Vec::new(),
            ChaosPlan {
                seed,
                cut_after: None,
                corrupt_one_in: None,
                fragment: true,
            },
        );
        let mut writer = writer;
        serve(&svc, script.as_bytes(), &mut writer).unwrap();
        assert_eq!(
            writer.into_inner(),
            clean,
            "seed {seed}: fragmented transport delivered every byte in order"
        );
    }
}

/// Four concurrent TCP clients hammer one shared closure; every answer
/// must match the Warshall oracle of the served graph, the daemon must
/// merge all four sessions into its summary, and none may fail.
#[test]
fn four_concurrent_tcp_clients_match_the_oracle() {
    const N: usize = 24;
    const QUERIES: usize = 200;
    let mut g = DiGraph::new(N);
    let mut rng = Rng::seed_from_u64(4242);
    for _ in 0..60 {
        g.add_edge(rng.gen_usize(N), rng.gen_usize(N));
    }
    let want = Arc::new(warshall(&g));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let svc = Arc::new(SharedService::new(
        ReachService::new(g),
        SessionLimits::default(),
    ));
    let server = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || serve_tcp(&svc, &listener, 4, Some(4)).unwrap())
    };
    let clients: Vec<_> = (0..4u64)
        .map(|c| {
            let want = Arc::clone(&want);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                stream.set_nodelay(true).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut w = stream;
                let mut rng = Rng::seed_from_u64(100 + c);
                for _ in 0..QUERIES {
                    let (u, v) = (rng.gen_usize(N), rng.gen_usize(N));
                    writeln!(w, "REACH {u} {v}").unwrap();
                    let mut resp = String::new();
                    reader.read_line(&mut resp).unwrap();
                    assert_eq!(
                        resp.trim_end(),
                        format!("REACH {u} {v} {}", want.get(u, v)),
                        "client {c} diverged from the oracle"
                    );
                }
                writeln!(w, "QUIT").unwrap();
                let mut bye = String::new();
                reader.read_line(&mut bye).unwrap();
                assert_eq!(bye.trim_end(), "BYE");
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    let summary = server.join().unwrap();
    assert_eq!(summary.sessions, 4);
    assert_eq!(summary.failed_sessions, 0);
    assert_eq!(summary.commands, 4 * (QUERIES as u64 + 1));
    assert_eq!(summary.errors, 0);
    assert_eq!(
        svc.read().stats().queries,
        4 * QUERIES as u64,
        "every query hit the shared service"
    );
    assert_eq!(svc.active_sessions(), 0, "all sessions drained");
}
