//! Property-based equivalence of `ParallelEngine` and its wrapped serial
//! engine: bit-identical batch results over `Bool` and `MaxMin`, and
//! merged run statistics invariant to the worker count.

use systolic::partition::{ClosureEngine, FixedLinearEngine, LinearEngine, ParallelEngine};
use systolic_semiring::{warshall, Bool, DenseMatrix, MaxMin};
use systolic_util::{Checker, Rng};

fn bool_batch(rng: &mut Rng) -> Vec<DenseMatrix<Bool>> {
    let n = 3 + rng.gen_usize(5); // 3..=7
    let count = 1 + rng.gen_usize(6); // 1..=6
    (0..count)
        .map(|_| DenseMatrix::from_fn(n, n, |i, j| i != j && rng.gen_bool(0.25)))
        .collect()
}

fn maxmin_batch(rng: &mut Rng) -> Vec<DenseMatrix<MaxMin>> {
    let n = 3 + rng.gen_usize(4); // 3..=6
    let count = 1 + rng.gen_usize(4); // 1..=4
    (0..count)
        .map(|_| {
            DenseMatrix::from_fn(n, n, |i, j| {
                if i != j && rng.gen_bool(0.4) {
                    rng.gen_range_u64(1, 49)
                } else {
                    0
                }
            })
        })
        .collect()
}

#[test]
fn parallel_equals_serial_over_bool() {
    Checker::new("parallel == serial (Bool)", 6).run(|rng| {
        let batch = bool_batch(rng);
        let m = 1 + rng.gen_usize(4); // 1..=4
        let serial = LinearEngine::new(m);
        let (want, _) = serial.closure_many(&batch).unwrap();
        for threads in [1usize, 2, 4] {
            let par = ParallelEngine::new(LinearEngine::new(m), threads);
            let (got, _) = par.closure_many(&batch).unwrap();
            assert_eq!(got, want, "threads={threads} m={m}");
        }
        for (a, c) in batch.iter().zip(&want) {
            assert_eq!(*c, warshall(a));
        }
        Ok(())
    });
}

#[test]
fn parallel_equals_serial_over_maxmin() {
    Checker::new("parallel == serial (MaxMin)", 6).run(|rng| {
        let batch = maxmin_batch(rng);
        let serial = FixedLinearEngine::new();
        let (want, _) = ClosureEngine::<MaxMin>::closure_many(&serial, &batch).unwrap();
        for threads in [1usize, 3] {
            let par = ParallelEngine::new(FixedLinearEngine::new(), threads);
            let (got, _) = par.closure_many(&batch).unwrap();
            assert_eq!(got, want, "threads={threads}");
        }
        Ok(())
    });
}

#[test]
fn merged_stats_do_not_depend_on_thread_count() {
    Checker::new("merged stats thread-count invariant", 6).run(|rng| {
        let batch = bool_batch(rng);
        let m = 1 + rng.gen_usize(3); // 1..=3
        let (_, base) = ParallelEngine::new(LinearEngine::new(m), 1)
            .closure_many(&batch)
            .unwrap();
        for threads in [2usize, 3, 5] {
            let par = ParallelEngine::new(LinearEngine::new(m), threads);
            let (_, stats) = par.closure_many(&batch).unwrap();
            // RunStats equality deliberately excludes wall-clock time.
            assert_eq!(stats, base, "threads={threads} m={m}");
        }
        Ok(())
    });
}
