//! Property-based scheduling: legality and coverage for arbitrary shapes,
//! plus the earliest-start invariant of Fig. 20.

use proptest::prelude::*;
use systolic::partition::GsetSchedule;
use systolic::transform::GGraph;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linear_schedules_legal(n in 2usize..28, m in 1usize..12) {
        let s = GsetSchedule::linear(n, m);
        prop_assert_eq!(s.total_gnodes(), n * (n + 1));
        s.verify_legal().unwrap();
        // No G-set exceeds the array size.
        for e in s.entries() {
            prop_assert!(e.members.len() <= m);
        }
    }

    #[test]
    fn grid_schedules_legal(n in 2usize..24, s in 1usize..6) {
        let sched = GsetSchedule::grid(n, s);
        prop_assert_eq!(sched.total_gnodes(), n * (n + 1));
        sched.verify_legal().unwrap();
        for e in sched.entries() {
            prop_assert!(e.members.len() <= s * s);
        }
    }

    #[test]
    fn earliest_start_tags_respect_dependences(n in 2usize..40) {
        let gg = GGraph::new(n);
        for id in gg.iter() {
            let t = gg.earliest_start(id);
            if let Some(c) = gg.column_dep(id) {
                prop_assert!(gg.earliest_start(c) < t);
            }
            if let Some(p) = gg.pivot_dep(id) {
                prop_assert!(gg.earliest_start(p) < t);
            }
        }
    }

    #[test]
    fn h_coordinates_roundtrip(n in 2usize..40) {
        let gg = GGraph::new(n);
        for id in gg.iter() {
            let h = gg.h_of(id);
            prop_assert_eq!(gg.at_h(id.k, h), Some(id));
        }
        // Outside the parallelogram: nothing.
        prop_assert_eq!(gg.at_h(0, n + 1), None);
        prop_assert_eq!(gg.at_h(n - 1, n - 2), None);
    }
}
