//! Property-based scheduling: legality and coverage for arbitrary shapes,
//! plus the earliest-start invariant of Fig. 20.

use systolic::partition::GsetSchedule;
use systolic::transform::GGraph;
use systolic_util::Checker;

#[test]
fn linear_schedules_legal() {
    Checker::new("linear schedules legal", 64).run(|rng| {
        let n = 2 + rng.gen_usize(26); // 2..=27
        let m = 1 + rng.gen_usize(11); // 1..=11
        let s = GsetSchedule::linear(n, m);
        assert_eq!(s.total_gnodes(), n * (n + 1));
        s.verify_legal().map_err(|e| format!("n={n} m={m}: {e}"))?;
        // No G-set exceeds the array size.
        for e in s.entries() {
            assert!(e.members.len() <= m, "n={n} m={m}");
        }
        Ok(())
    });
}

#[test]
fn grid_schedules_legal() {
    Checker::new("grid schedules legal", 64).run(|rng| {
        let n = 2 + rng.gen_usize(22); // 2..=23
        let s = 1 + rng.gen_usize(5); // 1..=5
        let sched = GsetSchedule::grid(n, s);
        assert_eq!(sched.total_gnodes(), n * (n + 1));
        sched
            .verify_legal()
            .map_err(|e| format!("n={n} s={s}: {e}"))?;
        for e in sched.entries() {
            assert!(e.members.len() <= s * s, "n={n} s={s}");
        }
        Ok(())
    });
}

#[test]
fn earliest_start_tags_respect_dependences() {
    Checker::new("earliest-start respects dependences", 64).run(|rng| {
        let n = 2 + rng.gen_usize(38); // 2..=39
        let gg = GGraph::new(n);
        for id in gg.iter() {
            let t = gg.earliest_start(id);
            if let Some(c) = gg.column_dep(id) {
                assert!(gg.earliest_start(c) < t, "n={n} column dep of {id:?}");
            }
            if let Some(p) = gg.pivot_dep(id) {
                assert!(gg.earliest_start(p) < t, "n={n} pivot dep of {id:?}");
            }
        }
        Ok(())
    });
}

#[test]
fn h_coordinates_roundtrip() {
    Checker::new("h-coordinates roundtrip", 64).run(|rng| {
        let n = 2 + rng.gen_usize(38); // 2..=39
        let gg = GGraph::new(n);
        for id in gg.iter() {
            let h = gg.h_of(id);
            assert_eq!(gg.at_h(id.k, h), Some(id), "n={n}");
        }
        // Outside the parallelogram: nothing.
        assert_eq!(gg.at_h(0, n + 1), None);
        assert_eq!(gg.at_h(n - 1, n - 2), None);
        Ok(())
    });
}
