//! Property-based equivalence of the SWAR min-plus lane planes.
//!
//! Inside the exact domain (`(n − 1) · wmax < lane ∞`), the packed
//! tropical engines `PackedEngine<MinPlusSwar8>` (8 × u8 lanes) and
//! `PackedEngine<MinPlusSwar16>` (4 × u16 lanes) must be bit-identical to
//! the scalar min-plus `LinearEngine` — results and merged `RunStats` —
//! at batch sizes straddling the lane-group boundary: 1, `L − 1`, `L`,
//! `L + 1`. Outside the domain the batch must transparently take the
//! scalar path and still produce exact results.

use systolic::partition::{ClosureEngine, LinearEngine, PackedEngine};
use systolic_arraysim::RunStats;
use systolic_semiring::instances::INF;
use systolic_semiring::{
    warshall, DenseMatrix, LaneSemiring, MinPlus, MinPlusSwar16, MinPlusSwar8,
};
use systolic_util::{Checker, Rng};

fn random_batch(rng: &mut Rng, len: usize, n: usize, wmax: u64) -> Vec<DenseMatrix<MinPlus>> {
    (0..len)
        .map(|_| {
            DenseMatrix::from_fn(n, n, |i, j| {
                if i == j {
                    0
                } else if rng.gen_bool(0.35) {
                    1 + rng.gen_usize(wmax as usize) as u64
                } else {
                    INF
                }
            })
        })
        .collect()
}

fn per_instance_merge(
    engine: &LinearEngine,
    batch: &[DenseMatrix<MinPlus>],
) -> (Vec<DenseMatrix<MinPlus>>, RunStats) {
    let mut results = Vec::with_capacity(batch.len());
    let mut merged: Option<RunStats> = None;
    for a in batch {
        let (c, s) = ClosureEngine::<MinPlus>::closure(engine, a).unwrap();
        results.push(c);
        match &mut merged {
            None => merged = Some(s),
            Some(acc) => acc.merge(&s),
        }
    }
    (results, merged.unwrap())
}

fn check_plane<L>(rng: &mut Rng) -> Result<(), String>
where
    L: LaneSemiring<Scalar = MinPlus>,
{
    let lanes = L::LANE_COUNT;
    let n = 2 + rng.gen_usize(4); // 2..=5
    let m = 1 + rng.gen_usize(3); // 1..=3
                                  // (n − 1) · wmax ≤ 4 · 9 = 36 < 255: inside even the u8 domain.
    let wmax = 1 + rng.gen_usize(9) as u64;
    let scalar = LinearEngine::new(m);
    let packed = PackedEngine::<L>::over(m);
    for len in [1, lanes - 1, lanes, lanes + 1] {
        let batch = random_batch(rng, len, n, wmax);
        let (want, want_stats) = per_instance_merge(&scalar, &batch);
        let (got, got_stats) = packed.closure_many(&batch).unwrap();
        if got != want {
            return Err(format!(
                "results diverge at {} n={n} m={m} len={len}",
                L::ENGINE_NAME
            ));
        }
        if got_stats != want_stats {
            return Err(format!(
                "stats diverge at {} n={n} m={m} len={len}",
                L::ENGINE_NAME
            ));
        }
        if got[len - 1] != warshall(&batch[len - 1]) {
            return Err(format!(
                "reference diverges at {} n={n} m={m} len={len}",
                L::ENGINE_NAME
            ));
        }
    }
    if packed.fallback_runs() != 0 {
        return Err(format!(
            "{} fell back inside its exact domain",
            L::ENGINE_NAME
        ));
    }
    Ok(())
}

#[test]
fn swar8_plane_is_bit_identical_to_scalar_minplus() {
    Checker::new("8×u8 tropical plane bit-identical to scalar", 6).run(check_plane::<MinPlusSwar8>);
}

#[test]
fn swar16_plane_is_bit_identical_to_scalar_minplus() {
    Checker::new("4×u16 tropical plane bit-identical to scalar", 6)
        .run(check_plane::<MinPlusSwar16>);
}

#[test]
fn out_of_domain_batches_take_the_scalar_path_exactly() {
    Checker::new("out-of-domain min-plus batches fall back", 4).run(|rng| {
        let n = 3 + rng.gen_usize(3); // 3..=5
        let packed = PackedEngine::<MinPlusSwar8>::over(2);
        // Weights near the u8 ∞ encoding: (n − 1) · wmax ≥ 255 breaks the
        // exactness precondition, so the engine must not pack.
        let batch = random_batch(rng, 5, n, 250);
        let heavy = batch
            .iter()
            .any(|a| (0..n).any(|i| (0..n).any(|j| *a.get(i, j) != INF && *a.get(i, j) >= 128)));
        if !heavy {
            return Ok(()); // vanishingly unlikely: every weight rolled low
        }
        let (got, _) = packed.closure_many(&batch).unwrap();
        for (a, c) in batch.iter().zip(&got) {
            if *c != warshall(a) {
                return Err(format!("fallback diverges from reference at n={n}"));
            }
        }
        if packed.packed_runs() != 0 {
            return Err("out-of-domain batch must not take the packed path".into());
        }
        Ok(())
    });
}
