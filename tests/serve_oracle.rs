//! Acceptance harness for the reachability service: pinned seeded command
//! streams replayed against a full-recompute oracle.
//!
//! The oracle maintains the raw edge set and answers every `REACH` from a
//! bit-parallel Warshall closure recomputed whenever the graph changed —
//! deliberately ignorant of rank-1 updates, condensations and admission
//! batching, so any divergence pins a bug in the incremental path.

use std::sync::Arc;
use systolic::closure::DiGraph;
use systolic::partition::{AdmissionBatcher, PackedEngine};
use systolic_semiring::BitMatrix;
use systolic_service::{seeded_stream, Command, Durability, ReachService, Response};

struct Oracle {
    g: DiGraph,
    closed: Option<BitMatrix>,
}

impl Oracle {
    fn new(n: usize) -> Self {
        Self {
            g: DiGraph::new(n),
            closed: None,
        }
    }

    fn reach(&mut self, u: usize, v: usize) -> bool {
        let closed = self.closed.get_or_insert_with(|| {
            BitMatrix::from_dense(&self.g.adjacency_matrix()).transitive_closure()
        });
        closed.get(u, v)
    }

    fn insert(&mut self, u: usize, v: usize) {
        if !self.g.has_edge(u, v) {
            self.g.add_edge(u, v);
            self.closed = None;
        }
    }

    fn delete(&mut self, u: usize, v: usize) {
        if self.g.remove_edge(u, v) {
            self.closed = None;
        }
    }
}

/// Replays a stream through a service and the oracle, asserting every
/// `REACH` answer matches and every `INSERT`/`DELETE` succeeds. The
/// oracle is passed in so a crash/restart test can carry one oracle
/// across two service lifetimes.
fn replay_with(svc: &mut ReachService, cmds: &[Command], oracle: &mut Oracle) {
    for (step, cmd) in cmds.iter().enumerate() {
        match (cmd.clone(), svc.execute(cmd.clone())) {
            (Command::Reach(u, v), Response::Reach { reachable, .. }) => {
                assert_eq!(
                    reachable,
                    oracle.reach(u, v),
                    "step {step}: REACH {u} {v} diverged from recompute oracle"
                );
            }
            (Command::Insert(u, v), Response::Inserted { .. }) => oracle.insert(u, v),
            (Command::Delete(u, v), Response::Deleted { .. }) => oracle.delete(u, v),
            (c, r) => panic!("step {step}: {c:?} answered {r}"),
        }
    }
}

#[test]
fn software_service_matches_oracle_over_10k_commands() {
    let cmds = seeded_stream(48, 10_000, 20260808);
    assert!(cmds.len() >= 10_000);
    let mut svc = ReachService::new(DiGraph::new(48));
    replay_with(&mut svc, &cmds, &mut Oracle::new(48));
    let stats = svc.stats();
    assert!(
        stats.queries > 6_000,
        "stream was mostly queries: {stats:?}"
    );
    assert_eq!(stats.errors, 0);
}

#[test]
fn durable_service_crash_restart_mid_stream_matches_oracle() {
    const N: usize = 32;
    const CUT: usize = 5_000; // pinned crash point in the command stream
    let cmds = seeded_stream(N, 10_000, 20260808);
    let wal =
        std::env::temp_dir().join(format!("systolic-oracle-crash-{}.wal", std::process::id()));
    std::fs::remove_file(&wal).ok();
    std::fs::remove_file(Durability::snapshot_path(&wal)).ok();
    let mut oracle = Oracle::new(N);
    {
        let (d, g, _) = Durability::open(&wal, Some(512), DiGraph::new(N)).unwrap();
        let mut svc = ReachService::new(g).with_durability(d);
        replay_with(&mut svc, &cmds[..CUT], &mut oracle);
        // Crash: the service is dropped cold, no orderly shutdown. Every
        // committed mutation is already in the WAL (or rolled into a
        // snapshot), so nothing is allowed to be lost.
    }
    let (d, g, report) = Durability::open(&wal, Some(512), DiGraph::new(N)).unwrap();
    assert_eq!(report.torn_bytes, 0, "clean crash leaves no torn tail");
    let mut svc = ReachService::new(g).with_durability(d);
    // The recovered closure must equal the oracle's full recompute ...
    for u in 0..N {
        for v in 0..N {
            match svc.execute(Command::Reach(u, v)) {
                Response::Reach { reachable, .. } => assert_eq!(
                    reachable,
                    oracle.reach(u, v),
                    "recovered REACH {u} {v} diverged"
                ),
                other => panic!("REACH answered {other}"),
            }
        }
    }
    // ... and the remainder of the stream replays exactly as if the
    // crash never happened.
    replay_with(&mut svc, &cmds[CUT..], &mut oracle);
    std::fs::remove_file(&wal).ok();
    std::fs::remove_file(Durability::snapshot_path(&wal)).ok();
}

#[test]
fn batched_service_matches_oracle() {
    // Smaller stream: every delete-triggered recompute runs through the
    // packed engine simulation, which is orders slower than software.
    let cmds = seeded_stream(24, 600, 7);
    let batcher = Arc::new(AdmissionBatcher::new(PackedEngine::new(3)));
    let mut svc = ReachService::with_batcher(DiGraph::new(24), batcher.clone());
    replay_with(&mut svc, &cmds, &mut Oracle::new(24));
    let stats = batcher.stats();
    assert!(stats.executed > 0, "deletes routed through the batcher");
    assert!(
        stats.warm_groups > 0,
        "repeat recomputes reuse the memoized plan: {stats:?}"
    );
}
